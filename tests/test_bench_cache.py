"""Disk-cache keys and staleness: the full-config fingerprint bugfix."""

import dataclasses

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, BenchSession
from repro.core.mapdata import MapData


def tiny_config(tmp_path, **overrides) -> BenchConfig:
    defaults = dict(
        n_rows=512,
        min_exp_1d=-3,
        min_exp_2d=-2,
        pool_pages=32,
        cache_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


def test_fingerprint_tracks_every_shaping_knob(tmp_path):
    base = tiny_config(tmp_path)
    assert base.fingerprint() == tiny_config(tmp_path).fingerprint()
    for change in (
        {"min_exp_1d": -4},
        {"min_exp_2d": -3},
        {"budget_scale": 10.0},
        {"memory_bytes": 1 << 20},
        {"pool_pages": 64},
        {"n_rows": 1024},
        {"seed": 7},
    ):
        assert tiny_config(tmp_path, **change).fingerprint() != base.fingerprint()


def test_fingerprint_ignores_workers_and_cache_dir(tmp_path):
    base = tiny_config(tmp_path)
    assert tiny_config(tmp_path, n_workers=4).fingerprint() == base.fingerprint()
    assert (
        dataclasses.replace(base, cache_dir=None).fingerprint()
        == base.fingerprint()
    )


def test_cache_path_embeds_fingerprint(tmp_path):
    base = tiny_config(tmp_path)
    changed = tiny_config(tmp_path, budget_scale=10.0)
    assert base.cache_path("single_predicate") != changed.cache_path(
        "single_predicate"
    )


def test_changed_config_does_not_reuse_stale_cache(tmp_path):
    config = tiny_config(tmp_path)
    first = BenchSession(config).single_predicate_map()
    assert first.grid_shape == (4,)
    # Regression: with rows/seed-only keys, shrinking the grid reused the
    # old 4-point map; the fingerprinted key computes a fresh 3-point one.
    shrunk = tiny_config(tmp_path, min_exp_1d=-2)
    second = BenchSession(shrunk).single_predicate_map()
    assert second.grid_shape == (3,)


def test_cache_hit_round_trips_bit_identically(tmp_path):
    config = tiny_config(tmp_path)
    computed = BenchSession(config).single_predicate_map()
    cached = BenchSession(config).single_predicate_map()
    assert np.array_equal(cached.times, computed.times, equal_nan=True)
    assert np.array_equal(cached.rows, computed.rows)
    assert cached.meta == computed.meta
    assert cached.meta["config_fingerprint"] == config.fingerprint()


def test_harness_parallel_map_bit_identical_to_serial(tmp_path):
    serial = BenchSession(tiny_config(tmp_path / "s")).two_predicate_map()
    parallel = BenchSession(
        tiny_config(tmp_path / "p", n_workers=2)
    ).two_predicate_map()
    assert parallel.plan_ids == serial.plan_ids
    assert np.array_equal(parallel.times, serial.times, equal_nan=True)
    assert np.array_equal(parallel.aborted, serial.aborted)
    assert np.array_equal(parallel.rows, serial.rows)
    assert parallel.meta == serial.meta


def test_scenario_maps_cached_and_validated(tmp_path):
    config = tiny_config(
        tmp_path, sort_rows=(256, 512, 1024), sort_memory=(32 << 10, 64 << 10)
    )
    computed = BenchSession(config).scenario_map("sort_spill")
    assert computed.grid_shape == (3, 2)
    assert computed.meta["scenario"] == "sort-spill"
    path = config.cache_path("scenario_sort_spill")
    assert path is not None and path.exists()
    cached = BenchSession(config).scenario_map("sort_spill")
    assert np.array_equal(cached.times, computed.times, equal_nan=True)
    assert cached.meta == computed.meta
    # Changing a scenario-shaping knob gets a fresh cache file.
    changed = tiny_config(
        tmp_path, sort_rows=(256, 512), sort_memory=(32 << 10, 64 << 10)
    )
    assert changed.fingerprint() != config.fingerprint()
    assert BenchSession(changed).scenario_map("sort_spill").grid_shape == (2, 2)


def test_scenario_map_unknown_name(tmp_path):
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="unknown scenario"):
        BenchSession(tiny_config(tmp_path)).scenario_map("nope")


def test_harness_scenario_parallel_bit_identical_to_serial(tmp_path):
    overrides = dict(memory_axis=(8 << 10, 512 << 10))
    serial = BenchSession(
        tiny_config(tmp_path / "s", **overrides)
    ).memory_sweep_map()
    parallel = BenchSession(
        tiny_config(tmp_path / "p", n_workers=2, **overrides)
    ).memory_sweep_map()
    assert parallel.plan_ids == serial.plan_ids
    assert np.array_equal(parallel.times, serial.times, equal_nan=True)
    assert np.array_equal(parallel.aborted, serial.aborted)
    assert np.array_equal(parallel.rows, serial.rows)
    assert parallel.meta == serial.meta


def test_cli_scenario_smoke(tmp_path, monkeypatch):
    from repro.bench.cli import main

    monkeypatch.setenv("REPRO_BENCH_ROWS", "512")
    monkeypatch.setenv("REPRO_BENCH_MIN_EXP_2D", "-2")
    out_dir = tmp_path / "scenarios"
    code = main([str(out_dir), "--scenario", "sort_spill"])
    assert code == 0
    saved = MapData.load(out_dir / "scenario_sort_spill.json")
    assert saved.meta["scenario"] == "sort-spill"
    # 2-D scenario maps come with Fig 4/5-style heat maps per plan.
    svgs = sorted(out_dir.glob("scenario_sort_spill_*.svg"))
    pngs = sorted(out_dir.glob("scenario_sort_spill_*.png"))
    assert len(svgs) == saved.n_plans and len(pngs) == saved.n_plans
    assert svgs[0].read_text().lstrip().startswith("<svg")
    assert pngs[0].read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"
    assert main([str(out_dir), "--scenario", "bogus"]) == 2


def test_join_map_cached_and_reloaded(tmp_path, capsys):
    config = tiny_config(tmp_path, join_rows=(64, 128), join_key_domain=256)
    first = BenchSession(config).scenario_map("join")
    assert first.grid_shape == (2, 2)
    assert first.plan_ids == [
        "join.merge",
        "join.hash.graceful",
        "join.hash.all-or-nothing",
        "join.inl",
    ]
    reloaded = BenchSession(config).join_map()  # fresh session, disk cache
    assert np.array_equal(reloaded.times, first.times, equal_nan=True)
    assert reloaded.meta == first.meta
    # Shrinking the grid must invalidate, not reuse, the cache.
    smaller = tiny_config(tmp_path, join_rows=(64,), join_key_domain=256)
    assert BenchSession(smaller).join_map().grid_shape == (1, 1)


def test_cli_join_scenario_prints_symmetry(tmp_path, monkeypatch):
    from repro.bench.cli import main

    monkeypatch.setenv("REPRO_BENCH_ROWS", "512")
    out_dir = tmp_path / "scenarios"
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(cache_dir))
    import repro.bench.harness as harness_module

    # Shrink the join grid through a patched default config (the CLI
    # builds BenchConfig from the environment).
    original = harness_module.BenchConfig

    def small_config(*args, **kwargs):
        kwargs.setdefault("join_rows", (64, 128))
        kwargs.setdefault("join_key_domain", 256)
        return original(*args, **kwargs)

    monkeypatch.setattr(harness_module, "BenchConfig", small_config)
    monkeypatch.setattr("repro.bench.cli.BenchConfig", small_config)
    code = main([str(out_dir), "--scenario", "join"])
    assert code == 0
    saved = MapData.load(out_dir / "scenario_join.json")
    assert saved.meta["scenario"] == "join"
    assert len(list(out_dir.glob("scenario_join_*.svg"))) == 4
    assert len(list(out_dir.glob("scenario_join_*.png"))) == 4


def test_refine_changes_fingerprint(tmp_path):
    base = tiny_config(tmp_path)
    assert tiny_config(tmp_path, refine=True).fingerprint() != base.fingerprint()
    assert (
        tiny_config(tmp_path, refine=True, refine_max_cells=7).fingerprint()
        != tiny_config(tmp_path, refine=True).fingerprint()
    )


def test_refined_map_cached_raw_and_returned_densified(tmp_path):
    config = tiny_config(tmp_path, min_exp_1d=-8, refine=True)
    session = BenchSession(config)
    mapdata = session.single_predicate_map()
    # The session hands out the full-grid interpolation view ...
    assert not mapdata.is_partial
    assert mapdata.meta["policy"] == "adaptive-refine"
    measured = mapdata.meta["measured_cells"]
    assert 0 < len(measured) < mapdata.times[0].size
    assert session.single_predicate_map() is mapdata  # memoized
    # ... while the disk cache stores the raw sparse measurement.
    raw = MapData.load(config.cache_path("single_predicate"))
    assert raw.is_partial
    assert raw.filled_cells.tolist() == sorted(measured)
    # A fresh session reloads the cache and densifies identically.
    reloaded = BenchSession(config).single_predicate_map()
    assert np.array_equal(reloaded.times, mapdata.times, equal_nan=True)
    assert reloaded.meta == mapdata.meta


def test_cache_validation_is_policy_aware(tmp_path):
    refined = tiny_config(tmp_path, min_exp_1d=-8, refine=True)
    session = BenchSession(refined)
    session.single_predicate_map()
    sparse = MapData.load(refined.cache_path("single_predicate"))
    assert session._cache_valid(sparse, "single_predicate")
    # A dense-looking map must not satisfy a refine config (nor a sparse
    # one a dense config), even at matching fingerprint and grid shape.
    dense_like = MapData.from_dict(sparse.to_dict())
    dense_like.meta.pop("policy")
    dense_like.meta.pop("cells")
    assert not session._cache_valid(dense_like, "single_predicate")
    sparse.meta["config_fingerprint"] = tiny_config(
        tmp_path, min_exp_1d=-8
    ).fingerprint()
    dense_session = BenchSession(tiny_config(tmp_path, min_exp_1d=-8))
    assert not dense_session._cache_valid(sparse, "single_predicate")


def test_refined_scenario_map_agrees_with_dense_on_measured(tmp_path):
    overrides = dict(join_rows=(64, 96, 128, 192, 256), join_key_domain=256)
    dense = BenchSession(tiny_config(tmp_path / "d", **overrides)).join_map()
    refined = BenchSession(
        tiny_config(tmp_path / "r", refine=True, **overrides)
    ).join_map()
    assert refined.grid_shape == dense.grid_shape
    cells = np.asarray(refined.meta["measured_cells"], dtype=int)
    flat_r = refined.times.reshape(refined.n_plans, -1)[:, cells]
    flat_d = dense.times.reshape(dense.n_plans, -1)[:, cells]
    assert np.array_equal(flat_r, flat_d, equal_nan=True)


def test_cli_refine_scenario_smoke(tmp_path, monkeypatch):
    from repro.bench.cli import main

    monkeypatch.setenv("REPRO_BENCH_ROWS", "512")
    monkeypatch.setenv("REPRO_BENCH_MIN_EXP_2D", "-5")
    # main() writes --refine/--max-cells into the environment; register
    # the vars with monkeypatch first so teardown restores their absence
    # and later tests' BenchConfig stays dense.
    monkeypatch.setenv("REPRO_BENCH_REFINE", "0")
    monkeypatch.setenv("REPRO_BENCH_MAX_CELLS", "0")
    out_dir = tmp_path / "scenarios"
    code = main(
        [str(out_dir), "--scenario", "memory_sweep", "--refine", "--max-cells", "9"]
    )
    assert code == 0
    saved = MapData.load(out_dir / "scenario_memory_sweep.json")
    assert saved.meta["policy"] == "adaptive-refine"
    assert len(saved.meta["measured_cells"]) <= 9
    assert not saved.is_partial  # written densified, coverage in meta


def test_corrupt_fingerprint_triggers_recompute(tmp_path):
    config = tiny_config(tmp_path)
    computed = BenchSession(config).single_predicate_map()
    path = config.cache_path("single_predicate")
    assert path is not None and path.exists()
    # Tamper: pretend the file came from a different config.
    stale = MapData.load(path)
    stale.meta["config_fingerprint"] = "0" * 16
    stale.save(path)
    recomputed = BenchSession(config).single_predicate_map()
    assert recomputed.meta["config_fingerprint"] == config.fingerprint()
    assert np.array_equal(recomputed.times, computed.times, equal_nan=True)


# ---------------------------------------------------------------------------
# estimation scenario, choice maps, and the error-model fingerprint
# ---------------------------------------------------------------------------


def test_error_model_knobs_are_fingerprinted(tmp_path):
    base = tiny_config(tmp_path)
    for change in (
        {"error_magnitudes": (0.0, 1.0)},
        {"error_bias": 0.5},
        {"error_seed": 7},
    ):
        assert tiny_config(tmp_path, **change).fingerprint() != base.fingerprint()


def test_available_scenarios_helper():
    available = BenchSession.available_scenarios()
    assert available == sorted(BenchSession.SCENARIO_MAPS)
    assert "estimation" in available


def test_estimation_map_cached_and_validated(tmp_path):
    config = tiny_config(tmp_path, error_magnitudes=(0.0, 2.0))
    session = BenchSession(config)
    mapdata = session.scenario_map("estimation")
    assert mapdata.grid_shape == (3, 2)
    assert [axis.name for axis in mapdata.axes] == [
        "selectivity",
        "error_magnitude",
    ]
    cache_file = config.cache_path("scenario_estimation")
    assert cache_file is not None and cache_file.exists()
    reloaded = BenchSession(config).scenario_map("estimation")
    assert np.array_equal(mapdata.times, reloaded.times, equal_nan=True)


def test_choice_maps_deterministic_across_sessions(tmp_path):
    config = tiny_config(tmp_path, error_magnitudes=(0.0, 2.0))
    first = BenchSession(config).choice_maps()
    second = BenchSession(config).choice_maps()
    assert sorted(first) == [
        "min-estimated-cost",
        "min-worst-regret",
        "penalty-aware",
    ]
    for name in first:
        assert np.array_equal(first[name].choices, second[name].choices)
        assert np.array_equal(
            first[name].regret, second[name].regret, equal_nan=True
        )
        # Same session: memoized object identity.
        session = BenchSession(config)
        assert session.choice_maps()[name] is session.choice_maps()[name]


def test_choice_maps_zero_error_column_matches_truth(tmp_path):
    """At magnitude 0 every policy sees exact estimates, so the classic
    policy's regret column equals its zero-uncertainty robust twin's."""
    config = tiny_config(tmp_path, error_magnitudes=(0.0, 3.0))
    choices = BenchSession(config).choice_maps()
    classic = choices["min-estimated-cost"]
    robust = choices["min-worst-regret"]
    assert np.array_equal(classic.choices[:, 0], robust.choices[:, 0])


def test_cli_estimation_regret_smoke(tmp_path, monkeypatch):
    from repro.bench import cli

    monkeypatch.setenv("REPRO_BENCH_ROWS", "512")
    monkeypatch.setenv("REPRO_BENCH_MIN_EXP_2D", "-2")
    out_dir = tmp_path / "out"
    code = cli.main([str(out_dir), "--scenario", "estimation", "--regret"])
    assert code == 0
    names = {p.name for p in out_dir.iterdir()}
    assert "scenario_estimation.json" in names
    for policy in ("min-estimated-cost", "min-worst-regret", "penalty-aware"):
        assert f"choice_{policy}.svg" in names
        assert f"choice_{policy}.json" in names
        assert f"regret_{policy}.svg" in names
        assert f"regret_{policy}.png" in names


def test_cli_regret_requires_estimation(tmp_path, capsys):
    from repro.bench import cli

    code = cli.main([str(tmp_path), "--scenario", "join", "--regret"])
    assert code == 2
    assert "estimation" in capsys.readouterr().err


def test_cli_unknown_scenario_lists_available(tmp_path, capsys):
    from repro.bench import cli

    code = cli.main([str(tmp_path), "--scenario", "nope"])
    assert code == 2
    err = capsys.readouterr().err
    for name in BenchSession.available_scenarios():
        assert name in err


def test_cli_cell_cache_compact(tmp_path, capsys, monkeypatch):
    from repro.bench import cli

    store_dir = tmp_path / "cells"
    # cli.main exports --cell-cache into REPRO_BENCH_CELL_CACHE; register the
    # variable with monkeypatch so teardown restores the pre-test environment.
    monkeypatch.setenv("REPRO_BENCH_CELL_CACHE", str(store_dir))
    config = tiny_config(
        tmp_path,
        cache_dir=None,
        cell_cache_dir=str(store_dir),
        join_rows=(64, 128),
        join_key_domain=256,
    )
    # Two sessions over one store: the rerun writes nothing new, so the
    # shards hold exactly one generation of entries to keep.
    BenchSession(config).join_map()
    BenchSession(config).join_map()
    code = cli.main(
        ["out", "--cell-cache", str(store_dir), "--cell-cache-compact"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "reclaimed" in out and "kept" in out
    # Still a loadable, warm store afterwards.
    again = BenchSession(config)
    mapdata = again.join_map()
    assert again.cell_store().stats()["cell_misses"] == 0
    assert mapdata.grid_shape == (2, 2)


def test_cli_cell_cache_compact_requires_directory(tmp_path, monkeypatch):
    from repro.bench import cli

    monkeypatch.delenv("REPRO_BENCH_CELL_CACHE", raising=False)
    with pytest.raises(SystemExit):
        cli.main([str(tmp_path), "--cell-cache-compact"])


def test_choice_maps_bit_identical_serial_vs_parallel(tmp_path):
    """The acceptance contract: choice/regret maps do not depend on the
    sweep path (serial vs worker processes) or on cache reuse."""
    overrides = dict(error_magnitudes=(0.0, 2.0))
    serial = BenchSession(
        tiny_config(tmp_path / "s", **overrides)
    ).choice_maps()
    parallel = BenchSession(
        tiny_config(tmp_path / "p", n_workers=2, **overrides)
    ).choice_maps()
    assert sorted(serial) == sorted(parallel)
    for name in serial:
        assert serial[name].plan_ids == parallel[name].plan_ids
        assert np.array_equal(serial[name].choices, parallel[name].choices)
        assert np.array_equal(
            serial[name].regret, parallel[name].regret, equal_nan=True
        )


def test_choice_maps_distinguish_policy_parameters(tmp_path):
    from repro.optimizer import PenaltyAware

    session = BenchSession(tiny_config(tmp_path, error_magnitudes=(0.0, 2.0)))
    heavy = session.choice_maps([PenaltyAware(penalty_weight=5.0)])
    light = session.choice_maps([PenaltyAware(penalty_weight=0.0)])
    # Different parameters must never share one memoized map object.
    assert heavy["penalty-aware"] is not light["penalty-aware"]
