"""Optimizer subsystem: estimation error, cost model, plan choice."""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.parallel import ParallelSweep
from repro.core.parameter_space import Space1D
from repro.core.scenario import EstimationErrorScenario
from repro.errors import ExperimentError, PlanError
from repro.executor.joins import join_plan_inventory
from repro.executor.plans import TableScanNode
from repro.optimizer import (
    CardinalityEstimator,
    CostModel,
    CostQuirks,
    Estimate,
    EstimationError,
    MinEstimatedCost,
    MinWorstRegret,
    PenaltyAware,
    PlanChooser,
    box_samples,
    quantity_of,
)
from repro.sim.profile import DeviceProfile
from repro.systems import SystemA, SystemB, SystemC, SystemConfig
from repro.workloads import JoinQuery, LineitemConfig
from repro.workloads.queries import SinglePredicateQuery, TwoPredicateQuery
from repro.workloads.selectivity import PredicateBuilder

CONFIG = SystemConfig(lineitem=LineitemConfig(n_rows=2048), pool_pages=64)


@pytest.fixture(scope="module")
def system_a():
    return SystemA(CONFIG)


def build_system_a():
    """Module-level factory: picklable for worker processes."""
    return [SystemA(CONFIG)]


# ---------------------------------------------------------------------------
# estimation error model
# ---------------------------------------------------------------------------


def test_q_factor_deterministic_and_seeded():
    error = EstimationError(magnitude=1.0, seed=7)
    assert error.q_factor("b", (3,)) == error.q_factor("b", (3,))
    assert error.q_factor("b", (3,)) != error.q_factor("b", (4,))
    assert error.q_factor("b", (3,)) != error.q_factor("out", (3,))
    other_seed = EstimationError(magnitude=1.0, seed=8)
    assert error.q_factor("b", (3,)) != other_seed.q_factor("b", (3,))


def test_magnitude_scales_one_fixed_draw():
    """ln(q) is proportional to magnitude: one draw per cell, amplified."""
    base = EstimationError(magnitude=1.0, seed=7)
    double = base.with_magnitude(2.0)
    log_q = math.log(base.q_factor("b", (5,)))
    assert math.log(double.q_factor("b", (5,))) == pytest.approx(2 * log_q)


def test_zero_magnitude_reproduces_truth():
    estimator = CardinalityEstimator(EstimationError(magnitude=0.0))
    true_cards = {"rows.b": 100.0, "sel.b": 0.25, "rows.out": 100.0}
    estimate = estimator.estimate(true_cards, key=(0,))
    assert estimate.values == true_cards
    assert estimate.uncertainty == 1.0


def test_paired_quantities_perturbed_together():
    estimator = CardinalityEstimator(EstimationError(magnitude=1.5, seed=3))
    estimate = estimator.estimate(
        {"rows.b": 1000.0, "sel.b": 0.1, "rows.out": 500.0}, key=(2,)
    )
    # rows.b and sel.b share the factor; rows.out draws independently.
    assert estimate.values["rows.b"] / 1000.0 == pytest.approx(
        estimate.values["sel.b"] / 0.1
    )
    assert estimate.values["rows.out"] / 500.0 != pytest.approx(
        estimate.values["rows.b"] / 1000.0
    )


def test_selectivity_cap_keeps_rows_consistent():
    """sel.* caps at 1, and the paired rows.* caps with it — an estimate
    can never claim full selectivity alongside more rows than exist."""
    estimator = CardinalityEstimator(
        EstimationError(magnitude=0.0, bias=5.0)
    )
    estimate = estimator.estimate({"sel.b": 0.5, "rows.b": 10.0}, key=())
    assert estimate.values["sel.b"] == 1.0
    assert estimate.values["rows.b"] == pytest.approx(20.0)


def test_negative_magnitude_rejected():
    with pytest.raises(ExperimentError):
        EstimationError(magnitude=-0.1)
    with pytest.raises(ExperimentError):
        Estimate({"rows.b": 1.0}, uncertainty=0.5)


def test_quantity_of():
    assert quantity_of("rows.b") == "b"
    assert quantity_of("sel.extendedprice") == "extendedprice"
    with pytest.raises(ExperimentError):
        quantity_of("rows")


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


def test_missing_estimate_is_plan_error(system_a):
    scan = TableScanNode(
        system_a.table,
        [PredicateBuilder(system_a.table, "partkey").range_for_selectivity(0.5)[0]],
    )
    with pytest.raises(PlanError):
        scan.estimated_cost(CostModel(DeviceProfile()), {})


def test_quirks_scale_charge_categories():
    base = CostModel(DeviceProfile())
    doubled = CostModel(DeviceProfile(), quirks=CostQuirks(random_io=2.0))
    assert doubled.random_reads(10) == pytest.approx(2 * base.random_reads(10))
    assert doubled.sequential_read(10) == pytest.approx(
        base.sequential_read(10)
    )
    cheap_cpu = CostModel(DeviceProfile(), quirks=CostQuirks(cpu=0.5))
    assert cheap_cpu.sort_cpu(1000) == pytest.approx(0.5 * base.sort_cpu(1000))


def test_external_sort_cost_spill_policies():
    model = CostModel(DeviceProfile(), memory_bytes=1 << 10)
    in_memory = model.external_sort_cost(8, 8)
    graceful = model.external_sort_cost(1 << 12, 8)
    all_or_nothing = model.external_sort_cost(1 << 12, 8, all_or_nothing=True)
    assert in_memory < graceful < all_or_nothing


def test_distinct_pages_yao_bounds():
    model = CostModel(DeviceProfile())
    assert model.distinct_pages(100, 0) == 0.0
    assert model.distinct_pages(100, 1) == pytest.approx(1.0)
    assert model.distinct_pages(100, 10**9) == 100.0
    assert 0 < model.distinct_pages(100, 50) < 50


def test_table_scan_cost_independent_of_estimates(system_a):
    """Scan cost barely moves with rows.out; index cost tracks rows."""
    model = system_a.cost_model()
    scan = TableScanNode(system_a.table, [])
    assert scan.estimated_cost(model, {}) > 0
    builder = PredicateBuilder(system_a.table, system_a.config.b_column)
    predicate, _ach = builder.range_for_selectivity(0.25)
    query = SinglePredicateQuery(predicate)
    plans = system_a.plans_for(query)
    improved = plans["A.idx_improved"]
    small = dict(system_a.true_cards(query))
    large = dict(small)
    column = system_a.config.b_column
    large[f"rows.{column}"] = system_a.table.n_rows
    large[f"sel.{column}"] = 1.0
    large["rows.out"] = system_a.table.n_rows
    assert improved.estimated_cost(model, large) > improved.estimated_cost(
        model, small
    )


def test_join_inventory_all_priced():
    model = CostModel(DeviceProfile(), memory_bytes=64 << 10)
    keys = np.arange(512, dtype=np.int64)
    est = {"rows.build": 512.0, "rows.probe": 512.0, "rows.out": 512.0}
    for plan in join_plan_inventory(keys, keys).values():
        assert model.cost(plan, est) > 0


def test_vendor_quirks_can_flip_the_choice(system_a):
    """Beliefs move boundaries: vendors disagree on identical estimates."""
    builder = PredicateBuilder(system_a.table, system_a.config.b_column)
    predicate, _ach = builder.range_for_selectivity(2.0**-7)
    query = SinglePredicateQuery(predicate)
    plans = system_a.plans_for(query)
    est = Estimate(system_a.true_cards(query))
    neutral = PlanChooser(CostModel(system_a.config.profile))
    # This vendor believes streamed I/O is ruinously slow, so the (tiny)
    # table's scan loses to an index plan it would otherwise dominate.
    scan_hater = PlanChooser(
        CostModel(
            system_a.config.profile, quirks=CostQuirks(sequential_io=500.0)
        )
    )
    neutral_choice = neutral.choose(plans, est)
    flipped_choice = scan_hater.choose(plans, est)
    assert neutral_choice == "A.table_scan"
    assert flipped_choice != neutral_choice


def test_three_vendors_have_distinct_quirks():
    quirks = {
        SystemA.cost_quirks,
        SystemB.cost_quirks,
        SystemC.cost_quirks,
    }
    assert len(quirks) == 3


# ---------------------------------------------------------------------------
# selection policies
# ---------------------------------------------------------------------------


def test_box_samples_shape_and_determinism():
    values = {"rows.b": 10.0, "sel.b": 0.1, "rows.out": 5.0}
    samples = box_samples(values, 2.0)
    assert len(samples) == 9  # 3^2 over the two base quantities {b, out}
    assert samples == box_samples(values, 2.0)
    assert box_samples(values, 1.0) == [values]
    # rows.b and sel.b always scale together, even at the sel = 1 cap.
    for sample in samples:
        assert sample["sel.b"] <= 1.0
        assert sample["rows.b"] / 10.0 == pytest.approx(
            sample["sel.b"] / 0.1
        )


def _costs_at(values):
    """Synthetic two-plan inventory: a flat plan and an estimate-chaser."""
    x = values["rows.x"]
    return {"steady": 3.0, "trap": 1.0 + x * x / 100.0}


def test_classic_trusts_the_point_estimate():
    estimate = Estimate({"rows.x": 10.0}, uncertainty=10.0)
    assert MinEstimatedCost().choose(_costs_at, estimate) == "trap"


def test_min_worst_regret_hedges():
    # Over the box x in {1, 10, 100}: trap costs {1.01, 2, 101} and its
    # worst regret is ~34x (at x=100); steady's is ~3x (at x=1).
    estimate = Estimate({"rows.x": 10.0}, uncertainty=10.0)
    assert MinWorstRegret().choose(_costs_at, estimate) == "steady"
    # Trusting the point estimate (u=1) degenerates to the classic pick.
    assert MinWorstRegret(uncertainty=1.0).choose(_costs_at, estimate) == "trap"


def test_penalty_aware_weight_interpolates():
    estimate = Estimate({"rows.x": 10.0}, uncertainty=10.0)
    # Zero weight: pure expected cost -> steady (trap's x=100 corner
    # dominates its mean); a large weight only reinforces that.
    assert PenaltyAware(penalty_weight=0.0).choose(_costs_at, estimate) == "steady"
    assert PenaltyAware(penalty_weight=10.0).choose(_costs_at, estimate) == "steady"


def test_ties_break_lexicographically():
    estimate = Estimate({"rows.x": 1.0})
    costs = lambda values: {"b": 1.0, "a": 1.0, "c": 1.0}  # noqa: E731
    assert MinEstimatedCost().choose(costs, estimate) == "a"
    assert MinWorstRegret().choose(costs, estimate) == "a"


def test_chooser_rejects_empty_inventory():
    chooser = PlanChooser(CostModel(DeviceProfile()))
    with pytest.raises(ExperimentError):
        chooser.choose({}, Estimate({}))


# ---------------------------------------------------------------------------
# DatabaseSystem.choose_plan
# ---------------------------------------------------------------------------


def test_choose_plan_single_predicate(system_a):
    builder = PredicateBuilder(system_a.table, system_a.config.b_column)
    predicate, _ach = builder.range_for_selectivity(2.0**-6)
    query = SinglePredicateQuery(predicate)
    plan_id, plan = system_a.choose_plan(query)
    assert plan_id in system_a.plans_for(query)
    assert plan.estimated_cost(
        system_a.cost_model(), system_a.true_cards(query)
    ) > 0


def test_choose_plan_all_systems_two_predicate():
    for system_type in (SystemA, SystemB, SystemC):
        system = system_type(CONFIG)
        builder_a = PredicateBuilder(system.table, system.config.a_column)
        builder_b = PredicateBuilder(system.table, system.config.b_column)
        query = TwoPredicateQuery(
            builder_a.range_for_selectivity(0.1)[0],
            builder_b.range_for_selectivity(0.1)[0],
        )
        plan_id, _plan = system.choose_plan(query)
        assert plan_id in system.plans_for(query)


def test_choose_plan_join(system_a):
    keys = np.arange(256, dtype=np.int64)
    query = JoinQuery(keys, keys)
    plan_id, _plan = system_a.choose_plan(query, memory_bytes=64 << 10)
    assert plan_id in system_a.plans_for(query)


def test_choose_plan_robust_policy(system_a):
    builder = PredicateBuilder(system_a.table, system_a.config.b_column)
    query = SinglePredicateQuery(builder.range_for_selectivity(0.25)[0])
    plan_id, _plan = system_a.choose_plan(
        query, policy=MinWorstRegret(uncertainty=8.0)
    )
    assert plan_id in system_a.plans_for(query)


# ---------------------------------------------------------------------------
# the estimation-error scenario
# ---------------------------------------------------------------------------


def _scenario(system) -> EstimationErrorScenario:
    return EstimationErrorScenario(
        [system],
        Space1D.log2("selectivity", -4, 0),
        magnitudes=(0.0, 1.0, 2.0),
    )


def test_estimation_scenario_axes_and_cells(system_a):
    scenario = _scenario(system_a)
    assert scenario.grid_shape == (5, 3)
    assert [axis.name for axis in scenario.axes] == [
        "selectivity",
        "error_magnitude",
    ]
    cell = scenario.cell((1, 2))
    assert cell.expected_rows == scenario.true_cards((1, 2))["rows.out"]


def test_estimation_scenario_estimates_contract(system_a):
    scenario = _scenario(system_a)
    # Magnitude 0: estimates are exact.
    zero = scenario.estimates((2, 0))
    assert zero.values == scenario.true_cards((2, 0))
    assert scenario.estimates((2, 1)).uncertainty == pytest.approx(math.e)
    # The magnitude axis amplifies one fixed draw per selectivity cell
    # (pure log-scaling is unit-tested on EstimationError; here the
    # full-selectivity cap may truncate an overestimate, consistently
    # across the paired rows and sel keys).
    column = scenario.column
    rows_key, sel_key = f"rows.{column}", f"sel.{column}"
    for i in range(scenario.grid_shape[0]):
        truth = scenario.true_cards((i, 0))
        one = scenario.estimates((i, 1)).values
        two = scenario.estimates((i, 2)).values
        ratio_one = one[rows_key] / truth[rows_key]
        ratio_two = two[rows_key] / truth[rows_key]
        if ratio_one >= 1.0:
            assert ratio_two >= ratio_one  # amplified (or already capped)
        else:
            assert math.log(ratio_two) == pytest.approx(
                2 * math.log(ratio_one)
            )
        for est in (one, two):
            assert est[sel_key] <= 1.0
            assert est[rows_key] / truth[rows_key] == pytest.approx(
                est[sel_key] / truth[sel_key]
            )


def test_estimation_scenario_spec_round_trip(system_a):
    scenario = _scenario(system_a)
    spec = scenario.spec()
    rebuilt = EstimationErrorScenario.from_spec(spec, [system_a])
    assert rebuilt.grid_shape == scenario.grid_shape
    assert rebuilt.estimates((1, 2)).values == scenario.estimates((1, 2)).values


def test_estimation_scenario_serial_parallel_identical(system_a):
    scenario = _scenario(system_a)
    serial = scenario.run(memory_bytes=1 << 20)
    engine = ParallelSweep(
        build_system_a, memory_bytes=1 << 20, n_workers=2
    )
    parallel = engine.sweep(scenario.spec())
    assert serial.plan_ids == parallel.plan_ids
    assert np.array_equal(serial.times, parallel.times, equal_nan=True)
    assert np.array_equal(serial.aborted, parallel.aborted)
    assert np.array_equal(serial.rows, parallel.rows)
    assert serial.meta == parallel.meta


def test_estimation_scenario_measurements_independent_of_error_axis(system_a):
    mapdata = _scenario(system_a).run(memory_bytes=1 << 20)
    # Measured times must be constant along the error axis: estimation
    # error perturbs the optimizer's inputs, never the executions.
    for j in range(1, mapdata.grid_shape[1]):
        assert np.array_equal(
            mapdata.times[:, :, j], mapdata.times[:, :, 0], equal_nan=True
        )
