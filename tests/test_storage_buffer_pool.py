"""Unit and property tests for the LRU buffer pool."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import BufferPoolError
from repro.sim.clock import SimClock
from repro.sim.disk import Disk
from repro.sim.profile import DeviceProfile
from repro.storage.buffer_pool import BufferPool


def make_pool(capacity=4):
    disk = Disk(SimClock(), DeviceProfile())
    pool = BufferPool(disk, capacity)
    handle = disk.create_file("f")
    return pool, disk, handle


def test_capacity_must_be_positive():
    disk = Disk(SimClock(), DeviceProfile())
    with pytest.raises(BufferPoolError):
        BufferPool(disk, 0)


def test_miss_charges_disk_hit_is_free():
    pool, disk, handle = make_pool()
    pool.get(handle, 1)
    t_after_miss = disk.clock.now
    pool.get(handle, 1)
    assert disk.clock.now == t_after_miss
    assert pool.stats.hits == 1
    assert pool.stats.misses == 1


def test_lru_eviction_order():
    pool, _disk, handle = make_pool(capacity=2)
    pool.get(handle, 1)
    pool.get(handle, 2)
    pool.get(handle, 1)  # 1 is now most recent
    pool.get(handle, 3)  # evicts 2
    assert pool.contains(handle, 1)
    assert not pool.contains(handle, 2)
    assert pool.contains(handle, 3)


def test_pinned_pages_survive_eviction():
    pool, _disk, handle = make_pool(capacity=2)
    pool.pin(handle, 1)
    pool.get(handle, 2)
    pool.get(handle, 3)  # must evict 2, not pinned 1
    assert pool.contains(handle, 1)
    pool.unpin(handle, 1)


def test_all_pinned_raises():
    pool, _disk, handle = make_pool(capacity=2)
    pool.pin(handle, 1)
    pool.pin(handle, 2)
    with pytest.raises(BufferPoolError):
        pool.get(handle, 3)
    pool.unpin(handle, 1)
    pool.unpin(handle, 2)


def test_unpin_unpinned_raises():
    pool, _disk, handle = make_pool()
    with pytest.raises(BufferPoolError):
        pool.unpin(handle, 1)


def test_nested_pins():
    pool, _disk, handle = make_pool()
    pool.pin(handle, 1)
    pool.pin(handle, 1)
    assert pool.pin_count(handle, 1) == 2
    pool.unpin(handle, 1)
    assert pool.pin_count(handle, 1) == 1
    pool.unpin(handle, 1)
    assert pool.pin_count(handle, 1) == 0


def test_clear_resets_residency():
    pool, _disk, handle = make_pool()
    pool.get(handle, 1)
    pool.clear()
    assert pool.resident_pages == 0
    assert not pool.contains(handle, 1)


def test_clear_with_pins_raises():
    pool, _disk, handle = make_pool()
    pool.pin(handle, 1)
    with pytest.raises(BufferPoolError):
        pool.clear()
    pool.unpin(handle, 1)


def test_capacity_never_exceeded_randomized():
    pool, _disk, handle = make_pool(capacity=3)
    import random

    random.seed(0)
    for _ in range(500):
        pool.get(handle, random.randrange(20))
        assert pool.resident_pages <= 3


@given(st.lists(st.integers(0, 9), min_size=1, max_size=200))
def test_lru_matches_reference_model(accesses):
    """The pool's hit/miss sequence must match a textbook LRU model."""
    pool, _disk, handle = make_pool(capacity=3)
    reference: list[int] = []  # most recent last
    for page in accesses:
        expect_hit = page in reference
        before = pool.stats.hits
        pool.get(handle, page)
        was_hit = pool.stats.hits > before
        assert was_hit == expect_hit
        if page in reference:
            reference.remove(page)
        reference.append(page)
        if len(reference) > 3:
            reference.pop(0)
    assert pool.resident_pages == len(reference)


def test_hit_rate():
    pool, _disk, handle = make_pool()
    pool.get(handle, 1)
    pool.get(handle, 1)
    assert pool.stats.hit_rate == pytest.approx(0.5)


def test_reset_stats():
    pool, _disk, handle = make_pool()
    pool.get(handle, 1)
    pool.reset_stats()
    assert pool.stats.accesses == 0
