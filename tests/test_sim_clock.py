"""Unit tests for the virtual clock and stopwatch."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.sim.clock import SimClock, Stopwatch


def test_clock_starts_at_zero():
    assert SimClock().now == 0.0


def test_clock_custom_start():
    assert SimClock(5.0).now == 5.0


def test_clock_rejects_negative_start():
    with pytest.raises(ExecutionError):
        SimClock(-1.0)


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ExecutionError):
        clock.advance(-0.1)


def test_advance_zero_is_noop():
    clock = SimClock()
    clock.advance(0.0)
    assert clock.now == 0.0


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
def test_clock_monotone_under_any_advances(durations):
    clock = SimClock()
    last = 0.0
    for duration in durations:
        clock.advance(duration)
        assert clock.now >= last
        last = clock.now
    assert clock.now == pytest.approx(sum(durations))


def test_stopwatch_measures_delta():
    clock = SimClock()
    watch = Stopwatch(clock)
    clock.advance(1.0)
    with watch:
        clock.advance(2.5)
    assert watch.elapsed == pytest.approx(2.5)
    assert clock.now == pytest.approx(3.5)


def test_stopwatch_reusable():
    clock = SimClock()
    watch = Stopwatch(clock)
    with watch:
        clock.advance(1.0)
    first = watch.elapsed
    with watch:
        clock.advance(2.0)
    assert first == pytest.approx(1.0)
    assert watch.elapsed == pytest.approx(2.0)


def test_clock_repr_mentions_time():
    clock = SimClock()
    clock.advance(1.25)
    assert "1.25" in repr(clock)
