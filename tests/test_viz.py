"""Tests for color scales, PNG/SVG/ASCII renderers, and figure helpers."""

import xml.etree.ElementTree as ET
import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import VisualizationError
from repro.viz import (
    ABSOLUTE_TIME_SCALE,
    RELATIVE_FACTOR_SCALE,
    ColorBucket,
    DiscreteScale,
    curve_ascii,
    curves_svg,
    decode_png_size,
    encode_png,
    heatmap_ascii,
    heatmap_svg,
    interpolate_rgb,
    legend_ascii,
    legend_pixels,
    legend_svg,
    rasterize_grid,
)
from repro.viz.figures import heatmap_png_pixels


# ---------------------------------------------------------------------------
# color scales
# ---------------------------------------------------------------------------


def test_absolute_scale_bucketing():
    scale = ABSOLUTE_TIME_SCALE
    assert scale.bucket_index(0.005) == 0
    assert scale.bucket_index(0.5) == 2
    assert scale.bucket_index(500.0) == 5
    # Clamping at both ends.
    assert scale.bucket_index(1e-9) == 0
    assert scale.bucket_index(1e9) == 5
    assert scale.bucket_index(float("inf")) == 5


def test_relative_scale_factor_one_special():
    scale = RELATIVE_FACTOR_SCALE
    assert scale.bucket_index(1.0) == 0
    assert scale.bucket_index(1.01) == 0
    assert scale.bucket_index(1.5) == 1
    assert scale.bucket_index(50_000) == 5


def test_bucket_indices_vectorized_matches_scalar():
    scale = ABSOLUTE_TIME_SCALE
    values = np.array([1e-4, 0.005, 0.05, 0.5, 5.0, 50.0, 500.0, 5e4])
    vectorized = scale.bucket_indices(values)
    scalar = [scale.bucket_index(float(v)) for v in values]
    assert vectorized.tolist() == scalar


def test_nan_bucketing_rejected():
    with pytest.raises(VisualizationError):
        ABSOLUTE_TIME_SCALE.bucket_index(float("nan"))
    with pytest.raises(VisualizationError):
        ABSOLUTE_TIME_SCALE.bucket_indices(np.array([1.0, np.nan]))


def test_scale_requires_contiguous_buckets():
    with pytest.raises(VisualizationError):
        DiscreteScale(
            [
                ColorBucket(0, 1, (0, 0, 0), "a"),
                ColorBucket(2, 3, (1, 1, 1), "b"),
            ],
            "broken",
        )


def test_colorize_shape():
    rgb = ABSOLUTE_TIME_SCALE.colorize(np.ones((3, 4)))
    assert rgb.shape == (3, 4, 3)
    assert rgb.dtype == np.uint8


def test_interpolate_rgb():
    assert interpolate_rgb((0, 0, 0), (100, 200, 50), 0.5) == (50, 100, 25)
    with pytest.raises(VisualizationError):
        interpolate_rgb((0, 0, 0), (1, 1, 1), 1.5)


@given(st.floats(min_value=1e-6, max_value=1e6))
def test_every_positive_value_gets_a_color(value):
    color = ABSOLUTE_TIME_SCALE.color_for(value)
    assert len(color) == 3


# ---------------------------------------------------------------------------
# PNG
# ---------------------------------------------------------------------------


def test_png_signature_and_size():
    pixels = np.zeros((7, 5, 3), dtype=np.uint8)
    data = encode_png(pixels)
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    assert decode_png_size(data) == (5, 7)


def test_png_idat_decompresses_to_scanlines():
    pixels = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
    data = encode_png(pixels)
    idat_start = data.index(b"IDAT") + 4
    import struct

    length = struct.unpack(">I", data[idat_start - 8 : idat_start - 4])[0]
    raw = zlib.decompress(data[idat_start : idat_start + length])
    assert len(raw) == 2 * (1 + 3 * 3)  # filter byte + RGB per row
    assert raw[0] == 0  # filter type 0


def test_png_rejects_bad_input():
    with pytest.raises(VisualizationError):
        encode_png(np.zeros((2, 2), dtype=np.uint8))
    with pytest.raises(VisualizationError):
        encode_png(np.zeros((2, 2, 3), dtype=np.float64))
    with pytest.raises(VisualizationError):
        encode_png(np.zeros((0, 2, 3), dtype=np.uint8))


def test_save_png(tmp_path):
    from repro.viz import save_png

    path = tmp_path / "x.png"
    save_png(path, np.zeros((2, 2, 3), dtype=np.uint8))
    assert decode_png_size(path.read_bytes()) == (2, 2)


def test_rasterize_grid_scales():
    cells = np.zeros((2, 3, 3), dtype=np.uint8)
    pixels = rasterize_grid(cells, cell_px=4)
    assert pixels.shape == (8, 12, 3)
    with pytest.raises(VisualizationError):
        rasterize_grid(cells, cell_px=0)


def test_heatmap_png_pixels_orientation():
    # grid[x, y]: y=1 (top row of image) red, y=0 green
    grid = np.array([[0.005, 500.0]])  # green bottom, black top
    pixels = heatmap_png_pixels(grid, ABSOLUTE_TIME_SCALE, cell_px=1)
    assert pixels.shape == (2, 1, 3)
    assert tuple(pixels[0, 0]) == ABSOLUTE_TIME_SCALE.buckets[-1].rgb  # top = y=1
    assert tuple(pixels[1, 0]) == ABSOLUTE_TIME_SCALE.buckets[0].rgb


def test_heatmap_png_censored_white():
    grid = np.array([[np.nan]])
    pixels = heatmap_png_pixels(grid, ABSOLUTE_TIME_SCALE, cell_px=1)
    assert tuple(pixels[0, 0]) == (255, 255, 255)


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def test_curves_svg_valid_xml():
    xs = np.array([0.001, 0.01, 0.1, 1.0])
    series = {"scan": np.array([1.0, 1.0, 1.1, 1.2]), "idx": np.array([0.01, 0.1, 1.0, 10.0])}
    svg = curves_svg(xs, series, title="test & chart")
    root = _parse(svg)
    assert root.tag.endswith("svg")
    assert "test &amp; chart" in svg
    assert svg.count("polyline") >= 2


def test_curves_svg_breaks_on_nan():
    xs = np.array([0.01, 0.1, 1.0])
    svg = curves_svg(xs, {"p": np.array([1.0, np.nan, 2.0])}, title="t")
    _parse(svg)
    # Two single points -> no polyline with 2+ points for the gap segment
    assert svg.count("<circle") == 2


def test_curves_svg_requires_series():
    with pytest.raises(VisualizationError):
        curves_svg(np.array([1.0]), {}, title="x")


def test_heatmap_svg_valid_and_has_cells():
    grid = np.array([[0.01, 1.0], [10.0, np.nan]])
    svg = heatmap_svg(
        grid,
        ABSOLUTE_TIME_SCALE,
        "map",
        np.array([-2.0, -1.0]),
        np.array([-2.0, -1.0]),
    )
    _parse(svg)
    # 4 cells + legend swatches + background
    assert svg.count("<rect") >= 4 + ABSOLUTE_TIME_SCALE.n_buckets


def test_legend_svg_lists_all_buckets():
    svg = legend_svg(RELATIVE_FACTOR_SCALE)
    _parse(svg)
    for bucket in RELATIVE_FACTOR_SCALE.buckets:
        assert bucket.label.split()[0] in svg


def test_legend_pixels_one_cell_per_bucket():
    pixels = legend_pixels(ABSOLUTE_TIME_SCALE, cell_px=2)
    assert pixels.shape == (2 * ABSOLUTE_TIME_SCALE.n_buckets, 2, 3)


# ---------------------------------------------------------------------------
# ASCII
# ---------------------------------------------------------------------------


def test_curve_ascii_contains_markers_and_legend():
    xs = np.array([0.01, 0.1, 1.0])
    text = curve_ascii(xs, {"scan": np.array([1.0, 2.0, 3.0])})
    assert "a = scan" in text
    plot_body = "".join(text.splitlines()[1:-1])
    assert plot_body.count("a") == 3  # one marker per data point


def test_curve_ascii_validates():
    with pytest.raises(VisualizationError):
        curve_ascii(np.array([1.0]), {})


def test_heatmap_ascii_shape():
    grid = np.full((4, 3), 0.005)
    text = heatmap_ascii(grid, ABSOLUTE_TIME_SCALE)
    lines = text.splitlines()
    assert len(lines) == 3
    assert all(len(line) == 4 for line in lines)
    assert set("".join(lines)) == {"."}


def test_heatmap_ascii_censored_marker():
    grid = np.array([[np.nan]])
    assert heatmap_ascii(grid, ABSOLUTE_TIME_SCALE) == "!"


def test_legend_ascii_mentions_buckets():
    text = legend_ascii(ABSOLUTE_TIME_SCALE)
    assert "0.001-0.01 seconds" in text
    assert "censored" in text


# ---------------------------------------------------------------------------
# categorical scale and choice/regret rendering
# ---------------------------------------------------------------------------


def test_categorical_scale_stable_assignment():
    from repro.viz import CategoricalScale

    scale = CategoricalScale(["A.scan", "A.index", "A.hash"], "Chosen plan")
    assert scale.n_categories == 3
    assert scale.color_for("A.scan") == scale.color_for_index(0)
    assert scale.index_of("A.hash") == 2
    # Stable: the same inventory yields the same colors in every panel.
    again = CategoricalScale(["A.scan", "A.index", "A.hash"], "other panel")
    assert [again.color_for(c) for c in again.categories] == [
        scale.color_for(c) for c in scale.categories
    ]


def test_categorical_scale_rejects_bad_input():
    from repro.viz import CategoricalScale

    with pytest.raises(VisualizationError):
        CategoricalScale([], "empty")
    with pytest.raises(VisualizationError):
        CategoricalScale(["a", "a"], "dup")
    scale = CategoricalScale(["a", "b"], "t")
    with pytest.raises(VisualizationError):
        scale.color_for("missing")
    with pytest.raises(VisualizationError):
        scale.color_for_index(2)
    with pytest.raises(VisualizationError):
        scale.colorize_indices(np.asarray([0, 2]))


def test_categorical_colorize_indices():
    from repro.viz import CategoricalScale

    scale = CategoricalScale(["a", "b"], "t")
    rgb = scale.colorize_indices(np.asarray([[0, 1], [1, 0]]))
    assert rgb.shape == (2, 2, 3)
    assert tuple(rgb[0, 0]) == scale.color_for("a")
    assert tuple(rgb[0, 1]) == scale.color_for("b")


def test_legend_svg_renders_categorical_scale():
    from repro.viz import CategoricalScale

    scale = CategoricalScale(["A.table_scan", "A.idx_improved"], "Chosen plan")
    svg = legend_svg(scale)
    _parse(svg)
    assert "A.table_scan" in svg and "A.idx_improved" in svg
    pixels = legend_pixels(scale, cell_px=2)
    assert pixels.shape == (2 * 2, 2, 3)


def test_categorical_heatmap_svg():
    from repro.viz import CategoricalScale, categorical_heatmap_svg

    scale = CategoricalScale(["a", "b"], "Chosen plan")
    indices = np.asarray([[0, 1], [1, -1]])  # -1: no choice (white)
    svg = categorical_heatmap_svg(
        indices, scale, "choices", ["x0", "x1"], ["y0", "y1"]
    )
    _parse(svg)
    assert "rgb(255,255,255)" in svg  # the -1 cell
    with pytest.raises(VisualizationError):
        categorical_heatmap_svg(indices, scale, "t", ["x0"], ["y0", "y1"])


def test_choice_and_regret_heatmaps_from_choice_map():
    from repro.core.choice import ChoiceMap
    from repro.core.mapdata import MapAxis
    from repro.viz.figures import (
        choice_heatmap,
        plan_choice_scale,
        regret_heatmap,
    )

    choice = ChoiceMap(
        policy="classic",
        plan_ids=["A.scan", "A.index"],
        choices=np.asarray([[0, 1], [1, 1]]),
        regret=np.asarray([[1.0, 2.0], [np.inf, np.nan]]),
        axes=[
            MapAxis("selectivity", [0.25, 0.5]),
            MapAxis("error_magnitude", [0.0, 1.0]),
        ],
    )
    scale = plan_choice_scale(choice.plan_ids)
    svg = choice_heatmap(choice, "choices", scale=scale)
    _parse(svg)
    assert "2^-2" in svg  # selectivity ticks render as powers of two
    assert "error_magnitude" in svg
    regret_svg = regret_heatmap(choice, "regret")
    _parse(regret_svg)
    assert "rgb(255,255,255)" in regret_svg  # the NaN cell renders white
    # The scale must cover the full inventory, shared across panels.
    with pytest.raises(VisualizationError):
        choice_heatmap(choice, "t", scale=plan_choice_scale(["A.scan"]))


def test_heatmap_svg_custom_tick_labels():
    grid = np.full((2, 2), 0.005)
    svg = heatmap_svg(
        grid,
        ABSOLUTE_TIME_SCALE,
        "t",
        np.zeros(2),
        np.zeros(2),
        x_tick_labels=["lo", "hi"],
        y_tick_labels=["0", "3"],
    )
    _parse(svg)
    assert ">lo<" in svg and ">hi<" in svg
    with pytest.raises(VisualizationError):
        heatmap_svg(
            grid,
            ABSOLUTE_TIME_SCALE,
            "t",
            np.zeros(2),
            np.zeros(2),
            x_tick_labels=["only-one"],
        )


def test_categorical_scale_stays_injective_past_the_palette():
    from repro.viz import CATEGORICAL_PALETTE, CategoricalScale

    categories = [f"plan{i}" for i in range(3 * len(CATEGORICAL_PALETTE))]
    scale = CategoricalScale(categories, "big inventory")
    colors = [scale.color_for(category) for category in categories]
    assert len(set(colors)) == len(categories)
