"""The map service: job manager, single-flight dedup, HTTP front-end."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bench.harness import BenchConfig, BenchSession
from repro.bench.requests import MapRequest
from repro.core.mapdata import MapData
from repro.core.progress import ProgressEvent
from repro.errors import ExperimentError
from repro.service import JobManager, RejectedRequest, build_server


def tiny_config(tmp_path=None, **overrides):
    defaults = dict(
        n_rows=512,
        min_exp_1d=-3,
        min_exp_2d=-2,
        pool_pages=32,
        join_rows=(64, 128),
        join_key_domain=256,
    )
    if tmp_path is not None:
        defaults["cache_dir"] = str(tmp_path)
    defaults.update(overrides)
    return BenchConfig(**defaults)


JOIN = MapRequest("join")


def make_manager(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_limit", 4)
    return JobManager(tiny_config(), **kwargs)


# ---------------------------------------------------------------------------
# job manager
# ---------------------------------------------------------------------------


def test_job_runs_and_matches_direct_session():
    manager = make_manager()
    try:
        job, created = manager.submit(JOIN)
        assert created and job.job_id == JOIN.fingerprint(manager.config)
        finished = manager.wait(job.job_id, timeout=120)
        assert finished.state == "done"
        direct = BenchSession(tiny_config()).join_map()
        assert np.array_equal(
            finished.result.times, direct.times, equal_nan=True
        )
        assert finished.result.meta == direct.meta
        status = manager.status(job)
        assert status["state"] == "done"
        assert status["done"] == status["total"] == 4
        assert status["coverage"] == 1.0
    finally:
        manager.close()


def test_concurrent_identical_requests_share_one_sweep(monkeypatch):
    """The tentpole contract: same fingerprint -> one computation."""
    import repro.bench.harness as harness_module

    calls = []
    entered = threading.Event()
    release = threading.Event()
    real = harness_module.compute_map

    def slow_compute(session, definition):
        calls.append(definition.name)
        entered.set()
        assert release.wait(10)
        return real(session, definition)

    monkeypatch.setattr(harness_module, "compute_map", slow_compute)
    manager = make_manager()
    try:
        first, created_first = manager.submit(JOIN)
        assert created_first
        assert entered.wait(10)  # the job is mid-computation...
        second, created_second = manager.submit(JOIN)  # ...when we dedup
        assert not created_second
        assert second is first  # same job id, same Job object
        release.set()
        finished = manager.wait(first.job_id, timeout=120)
        assert finished.state == "done"
        assert calls == ["join"]  # exactly one sweep ran
        # Both submitters read byte-identical results: it IS one result.
        assert manager.get(first.job_id).result is finished.result
    finally:
        release.set()
        manager.close()


def test_full_queue_rejects_loudly(monkeypatch):
    import repro.bench.harness as harness_module

    release = threading.Event()
    full = BenchSession(tiny_config()).join_map()  # before the patch

    def stuck_compute(session, definition):
        assert release.wait(10)
        return full

    monkeypatch.setattr(harness_module, "compute_map", stuck_compute)
    manager = JobManager(tiny_config(), workers=1, queue_limit=1)
    try:
        manager.submit(MapRequest("join"))  # occupies the worker
        time.sleep(0.1)
        manager.submit(MapRequest("join", {"seed": 1}))  # fills the queue
        with pytest.raises(RejectedRequest, match="queue is full"):
            manager.submit(MapRequest("join", {"seed": 2}))
        # Duplicate submissions still dedup even while the queue is full.
        job, created = manager.submit(MapRequest("join", {"seed": 1}))
        assert not created
    finally:
        release.set()
        manager.close()


def test_cell_budget_rejects_oversized_requests():
    manager = make_manager(cell_budget=4)
    try:
        manager.submit(JOIN)  # 2x2 fits
        with pytest.raises(RejectedRequest, match="over the service"):
            manager.submit(MapRequest("join", {"join_rows": (64, 96, 128)}))
        # A refinement budget caps the measurement, so the request fits.
        capped = MapRequest(
            "join",
            {"join_rows": (64, 96, 128), "refine": True, "refine_max_cells": 3},
        )
        job, created = manager.submit(capped)
        assert created and job.total == 3
    finally:
        manager.close()


def test_malformed_requests_fail_before_enqueue():
    manager = make_manager()
    try:
        with pytest.raises(ExperimentError, match="unknown config knob"):
            manager.submit(MapRequest("join", {"nope": 1}))
        assert manager.stats()["jobs"] == 0
    finally:
        manager.close()


def test_partial_snapshots_flow_to_partial_map(monkeypatch):
    """Mid-flight, partial_map serves the sweep's latest snapshot."""
    import repro.bench.harness as harness_module

    full = BenchSession(tiny_config()).join_map()
    partial_dict = full.to_dict()
    partial_dict["meta"] = dict(partial_dict["meta"], cells=[0, 2])
    snapshot = MapData.from_dict(partial_dict)
    emitted = threading.Event()
    release = threading.Event()

    def snapshotting_compute(session, definition):
        session.progress(
            ProgressEvent(
                scenario="join",
                done=2,
                total=4,
                elapsed=0.1,
                snapshot=snapshot,
            )
        )
        emitted.set()
        assert release.wait(10)
        return full

    monkeypatch.setattr(harness_module, "compute_map", snapshotting_compute)
    manager = make_manager(workers=1)
    try:
        job, _ = manager.submit(JOIN)
        assert emitted.wait(10)
        mid, partial = manager.partial_map(job)
        assert partial and mid is snapshot
        assert mid.filled_cells.tolist() == [0, 2]
        status = manager.status(job)
        assert status["state"] == "running"
        assert status["measured_cells"] == 2
        assert status["done"] == 2 and status["total"] == 4
        release.set()
        manager.wait(job.job_id, timeout=30)
        final, partial = manager.partial_map(job)
        assert not partial and final is full
    finally:
        release.set()
        manager.close()


def test_serial_snapshots_are_strict_submasks_of_final_map():
    """Every streamed snapshot: a subset of cells, bit-equal values."""
    snapshots = []

    def progress(event):
        if event.snapshot is not None:
            snapshots.append(event.snapshot)

    session = BenchSession(tiny_config(), progress=progress, snapshot_every=1)
    final = session.join_map()
    total = final.times[0].size
    assert snapshots, "snapshot_every=1 must stream snapshots"
    sizes = [int(snap.measured_mask.sum()) for snap in snapshots]
    assert sizes == sorted(sizes)  # monotone coverage
    assert any(0 < size < total for size in sizes)  # strict submask seen
    assert sizes[-1] == total
    for snap in snapshots:
        assert snap.is_partial or int(snap.measured_mask.sum()) == total
        assert snap.plan_ids == final.plan_ids
        mask = snap.measured_mask
        for k in range(len(final.plan_ids)):
            assert np.array_equal(
                snap.times[k][mask], final.times[k][mask], equal_nan=True
            )
            assert np.array_equal(snap.aborted[k][mask], final.aborted[k][mask])


def test_whole_map_cache_hit_is_flagged(tmp_path):
    config = tiny_config(tmp_path)
    cold = JobManager(config, workers=1, queue_limit=2)
    try:
        job, _ = cold.submit(JOIN)
        assert cold.wait(job.job_id, timeout=120).cache_hit is False
    finally:
        cold.close()
    warm = JobManager(config, workers=1, queue_limit=2)
    try:
        job, created = warm.submit(JOIN)
        assert created  # fresh manager, fresh books...
        finished = warm.wait(job.job_id, timeout=30)
        assert finished.state == "done"
        assert finished.cache_hit is True  # ...but the disk had the map
        assert finished.events == 0
    finally:
        warm.close()


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------


@pytest.fixture()
def service():
    manager = make_manager()
    server = build_server(manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", manager
    server.shutdown()
    server.server_close()
    manager.close()


def _get(base, path):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, json.loads(resp.read())


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as resp:
        return resp.status, json.loads(resp.read())


def test_http_submit_poll_result_render(service):
    base, manager = service
    code, listing = _get(base, "/scenarios")
    assert code == 200
    assert {entry["name"] for entry in listing["scenarios"]} >= {
        "join",
        "estimation",
    }
    assert "n_rows" in listing["knobs"] and "cache_dir" not in listing["knobs"]

    code, submitted = _post(base, "/maps", {"scenario": "join"})
    assert code == 202 and submitted["created"]
    job_id = submitted["job_id"]

    # Identical submission -> 202, same job id, created: false.
    code, duplicate = _post(base, "/maps", {"scenario": "join"})
    assert code == 202
    assert duplicate["job_id"] == job_id and not duplicate["created"]

    code, status = _get(base, f"/jobs/{job_id}?wait=120")
    assert code == 200 and status["state"] == "done"
    assert status["done"] == status["total"] == 4

    code, result = _get(base, f"/jobs/{job_id}/result")
    assert code == 200 and result["partial"] is False
    direct = BenchSession(tiny_config()).join_map()
    # The served JSON is byte-identical to a direct session's map.
    assert json.dumps(result["map"], sort_keys=True) == json.dumps(
        direct.to_dict(), sort_keys=True
    )

    code, partial = _get(base, f"/jobs/{job_id}/partial")
    assert code == 200 and partial["partial"] is False

    svg = urllib.request.urlopen(base + f"/jobs/{job_id}/render/join.merge.svg")
    assert svg.headers["Content-Type"] == "image/svg+xml"
    assert svg.read().lstrip().startswith(b"<svg")
    png = urllib.request.urlopen(base + f"/jobs/{job_id}/render/join.merge.png")
    assert png.headers["Content-Type"] == "image/png"
    assert png.read()[:8] == b"\x89PNG\r\n\x1a\n"


def test_http_error_statuses(service):
    base, manager = service

    def status_of(method, path, payload=None):
        try:
            if payload is None:
                urllib.request.urlopen(base + path)
            else:
                _post(base, path, payload)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())["error"]
        return 200, ""

    assert status_of("POST", "/maps", {"scenario": "bogus"})[0] == 400
    assert status_of("POST", "/maps", {"scenario": "join", "overides": {}})[0] == 400
    code, message = status_of(
        "POST", "/maps", {"scenario": "join", "overrides": {"cache_dir": "x"}}
    )
    assert code == 400 and "operator-controlled" in message
    assert status_of("GET", "/jobs/nope")[0] == 404
    assert status_of("GET", "/nope")[0] == 404

    # A queued-but-unfinished job answers 409 on /result.
    code, submitted = _post(
        base, "/maps", {"scenario": "join", "overrides": {"seed": 99}}
    )
    job_id = submitted["job_id"]
    codes = {status_of("GET", f"/jobs/{job_id}/result")[0]}
    assert codes <= {200, 409}
    manager.wait(job_id, timeout=120)
    assert status_of("GET", f"/jobs/{job_id}/render/not-a-plan.svg")[0] == 404
    assert status_of("GET", f"/jobs/{job_id}/render/join.merge.webp")[0] == 400


def test_http_rejections_are_429(monkeypatch):
    import repro.bench.harness as harness_module

    release = threading.Event()
    full = BenchSession(tiny_config()).join_map()  # before the patch

    def stuck_compute(session, definition):
        assert release.wait(10)
        return full

    monkeypatch.setattr(harness_module, "compute_map", stuck_compute)
    manager = JobManager(
        tiny_config(), workers=1, queue_limit=1, cell_budget=4
    )
    server = build_server(manager)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        _post(base, "/maps", {"scenario": "join"})
        time.sleep(0.1)
        _post(base, "/maps", {"scenario": "join", "overrides": {"seed": 1}})
        with pytest.raises(urllib.error.HTTPError) as full:
            _post(base, "/maps", {"scenario": "join", "overrides": {"seed": 2}})
        assert full.value.code == 429
        with pytest.raises(urllib.error.HTTPError) as over:
            _post(
                base,
                "/maps",
                {"scenario": "join", "overrides": {"join_rows": [64, 96, 128]}},
            )
        assert over.value.code == 429
    finally:
        release.set()
        server.shutdown()
        server.server_close()
        manager.close()
