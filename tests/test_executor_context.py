"""Unit tests for ExecContext, memory broker, and cost budgets."""

import pytest

from repro.errors import MemoryGrantError
from repro.executor.context import CostBudgetExceeded, ExecContext
from repro.executor.memory import MemoryBroker


def test_context_defaults_memory_from_profile(env):
    ctx = ExecContext(env)
    assert ctx.broker.limit_bytes == env.profile.memory_bytes


def test_charge_advances_clock(env):
    ctx = ExecContext(env)
    before = env.clock.now
    ctx.charge(1000, 1e-6)
    assert env.clock.now - before == pytest.approx(1e-3)


def test_charge_sort_cpu_nlogn(env):
    ctx = ExecContext(env)
    before = env.clock.now
    ctx.charge_sort_cpu(1024)
    expected = 1024 * 10 * env.profile.cpu_compare
    assert env.clock.now - before == pytest.approx(expected)


def test_charge_sort_cpu_trivial_inputs(env):
    ctx = ExecContext(env)
    before = env.clock.now
    ctx.charge_sort_cpu(0)
    ctx.charge_sort_cpu(1)
    assert env.clock.now == before


def test_budget_triggers(env):
    ctx = ExecContext(env, budget_seconds=0.5)
    ctx.arm_budget()
    env.clock.advance(0.4)
    ctx.check_budget()  # still fine
    env.clock.advance(0.2)
    with pytest.raises(CostBudgetExceeded) as exc:
        ctx.check_budget()
    assert exc.value.budget_seconds == 0.5
    assert exc.value.spent_seconds >= 0.6


def test_no_budget_never_triggers(env):
    ctx = ExecContext(env)
    env.clock.advance(1e9)
    ctx.check_budget()


def test_arm_budget_resets_window(env):
    ctx = ExecContext(env, budget_seconds=1.0)
    env.clock.advance(10.0)
    ctx.arm_budget()
    env.clock.advance(0.5)
    ctx.check_budget()


# ---------------------------------------------------------------------------
# MemoryBroker
# ---------------------------------------------------------------------------


def test_broker_grant_and_release():
    broker = MemoryBroker(1000)
    grant = broker.grant(600)
    assert broker.in_use_bytes == 600
    assert broker.available_bytes == 400
    grant.release()
    assert broker.in_use_bytes == 0


def test_broker_over_limit_raises():
    broker = MemoryBroker(1000)
    with pytest.raises(MemoryGrantError):
        broker.grant(1001)


def test_broker_try_grant_returns_none():
    broker = MemoryBroker(1000)
    held = broker.grant(900)
    assert broker.try_grant(200) is None
    assert broker.try_grant(100) is not None
    held.release()


def test_double_release_raises():
    broker = MemoryBroker(1000)
    grant = broker.grant(10)
    grant.release()
    with pytest.raises(MemoryGrantError):
        grant.release()


def test_grant_context_manager():
    broker = MemoryBroker(1000)
    with broker.grant(500):
        assert broker.in_use_bytes == 500
    assert broker.in_use_bytes == 0


def test_negative_grant_rejected():
    broker = MemoryBroker(1000)
    with pytest.raises(MemoryGrantError):
        broker.grant(-1)


def test_broker_limit_positive():
    with pytest.raises(MemoryGrantError):
        MemoryBroker(0)
