"""Unit tests for device profiles."""

import pytest

from repro.errors import ExecutionError
from repro.sim.profile import DeviceProfile, TEST_PROFILE


def test_default_profile_is_valid():
    profile = DeviceProfile()
    assert profile.page_size == 8192
    assert profile.page_transfer_time > 0


def test_page_transfer_time():
    profile = DeviceProfile(page_size=8192, transfer_rate=8192 * 100)
    assert profile.page_transfer_time == pytest.approx(0.01)


def test_random_page_time_includes_seek():
    profile = DeviceProfile()
    assert profile.random_page_time == pytest.approx(
        profile.seek_time + profile.page_transfer_time
    )


def test_random_to_sequential_ratio_large():
    # The whole paper rests on random I/O being far costlier than sequential.
    assert DeviceProfile().random_to_sequential_ratio > 10


def test_fetch_row_costlier_than_scan_row():
    profile = DeviceProfile()
    assert profile.cpu_fetch_row > profile.cpu_row


@pytest.mark.parametrize(
    "field, value",
    [
        ("page_size", 0),
        ("transfer_rate", 0),
        ("seek_time", -1e-3),
        ("cpu_row", -1e-9),
        ("memory_bytes", 0),
    ],
)
def test_invalid_profiles_rejected(field, value):
    with pytest.raises(ExecutionError):
        DeviceProfile(**{field: value})


def test_with_overrides_returns_new_profile():
    base = DeviceProfile()
    changed = base.with_overrides(seek_time=1e-3)
    assert changed.seek_time == 1e-3
    assert base.seek_time != 1e-3
    assert changed.page_size == base.page_size


def test_test_profile_small_pages():
    assert TEST_PROFILE.page_size == 512
