"""Cross-module integration tests, including the quotient-scaling law."""

import numpy as np
import pytest

from repro import (
    ColumnRange,
    LineitemConfig,
    RobustnessSweep,
    Space2D,
    SystemConfig,
    build_three_systems,
    quotient_for,
)
from repro.core.landmarks import flattening_violations
from repro.viz import absolute_curves, relative_heatmap
from repro.core.parameter_space import Space1D
from repro.systems import SystemA


def small_systems(n_rows):
    return build_three_systems(
        SystemConfig(lineitem=LineitemConfig(n_rows=n_rows), pool_pages=64)
    )


def fig7_corner_quotient(n_rows: int) -> float:
    """Fig 7's adversarial corner at one table size: the single-index plan
    on a non-selective predicate vs. the plan indexing the selective one."""
    from repro.workloads import PredicateBuilder, TwoPredicateQuery

    system = SystemA(
        SystemConfig(lineitem=LineitemConfig(n_rows=n_rows), pool_pages=64)
    )
    builder_b = PredicateBuilder(system.table, "extendedprice")
    tiny_b, _ = builder_b.range_for_selectivity(2.0**-8)
    full_a = ColumnRange("partkey", 0, (1 << 31) - 1)
    plans = system.two_predicate_plans(TwoPredicateQuery(full_a, tiny_b))
    runner = system.runner()
    bad = runner.measure(plans["A.idx_a_fetch"]).seconds
    good = runner.measure(plans["A.idx_b_fetch"]).seconds
    return bad / good


def test_worst_quotient_grows_with_table_size():
    """The paper's 101,000x is a table-size effect: the Fig 7 plan's
    worst-case factor must grow as the table grows (toward 10^5 at the
    paper's 60M rows)."""
    small = fig7_corner_quotient(1 << 12)
    large = fig7_corner_quotient(1 << 16)
    assert large > small * 2


def test_improved_scan_degrades_gracefully():
    """The paper's improved scan was 'not quite robust enough yet': flat
    growth followed by steeper growth (a flattening violation).  Our
    adaptive-prefetch implementation achieves the graceful degradation
    the paper hoped for: cost is monotone and its marginal cost per unit
    of selectivity never increases materially."""
    system = SystemA(SystemConfig(lineitem=LineitemConfig(n_rows=1 << 14)))
    sweep = RobustnessSweep([system])
    mapdata = sweep.sweep_single_predicate(Space1D.log2("sel", -12, 0))
    improved = mapdata.times_for("A.idx_improved")
    from repro.core.landmarks import monotonicity_violations

    assert monotonicity_violations(mapdata.x_achieved, improved) == []
    # Marginal cost (per unit selectivity) must not grow by more than 2x
    # step-to-step once past the latency-dominated start.
    landmarks = flattening_violations(
        mapdata.x_achieved[4:], improved[4:], slope_growth_tol=2.0
    )
    assert landmarks == []


def test_end_to_end_sweep_render_roundtrip(tmp_path):
    """Sweep -> MapData -> JSON -> render, all in one pass."""
    systems = small_systems(1 << 11)
    sweep = RobustnessSweep(list(systems.values()), budget_seconds=5.0)
    mapdata = sweep.sweep_two_predicate(Space2D.log2("a", "b", -3, 0))
    path = tmp_path / "map.json"
    mapdata.save(path)
    from repro import MapData

    loaded = MapData.load(path)
    svg = relative_heatmap(loaded, "C.ab_mdam", "roundtrip", path=tmp_path / "m.svg")
    assert (tmp_path / "m.svg").read_text() == svg

    sweep1d = RobustnessSweep([systems["A"]])
    map1d = sweep1d.sweep_single_predicate(Space1D.log2("sel", -3, 0))
    absolute_curves(map1d, "roundtrip", path=tmp_path / "c.svg")
    assert (tmp_path / "c.svg").exists()


def test_oracle_agreement_enforced():
    """The sweep runner rejects a plan that returns wrong results."""
    from repro.core.runner import RobustnessSweep as Sweep
    from repro.errors import ExperimentError
    from repro.executor import PlanNode
    from repro.executor.results import Result

    systems = small_systems(1 << 10)
    system = systems["A"]

    class LyingPlan(PlanNode):
        label = "liar"

        def execute(self, ctx):
            return Result(np.array([0], dtype=np.int64), {})

    original = system.two_predicate_plans

    def plans_with_liar(query):
        plans = original(query)
        plans["A.liar"] = LyingPlan()
        return plans

    system.two_predicate_plans = plans_with_liar  # type: ignore[method-assign]
    sweep = Sweep([system])
    with pytest.raises(ExperimentError):
        sweep.sweep_two_predicate(Space2D.log2("a", "b", -1, 0))


def test_mvcc_penalty_vs_covering():
    """System B pays for its MVCC fetches: its bitmap plan is strictly
    slower than System C's covering scan of the same index shape."""
    systems = small_systems(1 << 13)
    query_pred_a = ColumnRange("partkey", 0, 1 << 19)
    query_pred_b = ColumnRange("extendedprice", 0, 1 << 20)
    from repro.workloads import TwoPredicateQuery

    query = TwoPredicateQuery(query_pred_a, query_pred_b)
    b_run = systems["B"].runner().measure(
        systems["B"].two_predicate_plans(query)["B.ab_bitmap"]
    )
    c_run = systems["C"].runner().measure(
        systems["C"].two_predicate_plans(query)["C.ab_range"]
    )
    assert b_run.n_rows == c_run.n_rows
    assert b_run.seconds > c_run.seconds
