"""Unit and property tests for data generation and selectivity targeting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.executor.predicates import ColumnRange
from repro.workloads import (
    LineitemConfig,
    PredicateBuilder,
    SinglePredicateQuery,
    TwoPredicateQuery,
    achieved_selectivity,
    build_lineitem,
)
from repro.workloads.generators import (
    correlated_column,
    sequential_column,
    uniform_column,
    zipf_column,
)
from repro.workloads.lineitem import lineitem_columns


def test_uniform_column_range(rng):
    values = uniform_column(rng, 10000, 100)
    assert values.min() >= 0 and values.max() < 100


def test_uniform_rejects_bad_domain(rng):
    with pytest.raises(WorkloadError):
        uniform_column(rng, 10, 0)


def test_zipf_skews_low_values(rng):
    values = zipf_column(rng, 20000, 1000, skew=1.3)
    assert values.min() >= 0 and values.max() < 1000
    # Rank-1 value must be far more frequent than the tail.
    assert np.count_nonzero(values == 0) > 20000 * 0.2


def test_zipf_rejects_low_skew(rng):
    with pytest.raises(WorkloadError):
        zipf_column(rng, 10, 10, skew=1.0)


def test_correlated_column_tracks_base(rng):
    base = uniform_column(rng, 5000, 1000)
    corr = correlated_column(rng, base, 1000, correlation=0.9)
    agreement = np.mean(corr == base % 1000)
    assert agreement > 0.85


def test_correlated_zero_is_independent(rng):
    base = uniform_column(rng, 5000, 1000)
    fresh = correlated_column(rng, base, 1000, correlation=0.0)
    assert np.mean(fresh == base % 1000) < 0.05


def test_correlated_validates(rng):
    with pytest.raises(WorkloadError):
        correlated_column(rng, np.arange(5), 10, correlation=1.5)


def test_sequential_column():
    assert sequential_column(5, start=3).tolist() == [3, 4, 5, 6, 7]
    with pytest.raises(WorkloadError):
        sequential_column(-1)


# ---------------------------------------------------------------------------
# lineitem
# ---------------------------------------------------------------------------


def test_lineitem_deterministic():
    c1 = lineitem_columns(LineitemConfig(n_rows=1000, seed=5))
    c2 = lineitem_columns(LineitemConfig(n_rows=1000, seed=5))
    for name in c1:
        assert np.array_equal(c1[name], c2[name]), name


def test_lineitem_seed_changes_data():
    c1 = lineitem_columns(LineitemConfig(n_rows=1000, seed=5))
    c2 = lineitem_columns(LineitemConfig(n_rows=1000, seed=6))
    assert not np.array_equal(c1["partkey"], c2["partkey"])


def test_lineitem_has_predicate_columns():
    columns = lineitem_columns(LineitemConfig(n_rows=100))
    assert "partkey" in columns and "extendedprice" in columns
    assert "suppkey" in columns


def test_lineitem_config_validation():
    with pytest.raises(WorkloadError):
        LineitemConfig(n_rows=0)
    with pytest.raises(WorkloadError):
        LineitemConfig(n_rows=10, skew=0.5)


def test_lineitem_skew_option():
    columns = lineitem_columns(LineitemConfig(n_rows=5000, skew=1.5))
    values, counts = np.unique(columns["partkey"], return_counts=True)
    assert counts.max() > 100  # heavy duplication under skew


def test_build_lineitem_shares_columns(env):
    config = LineitemConfig(n_rows=500)
    columns = lineitem_columns(config)
    table = build_lineitem(env, config, columns)
    assert table.n_rows == 500
    assert np.array_equal(table.column("partkey"), columns["partkey"])


def test_lineitem_unknown_column_rejected():
    with pytest.raises(WorkloadError):
        lineitem_columns(LineitemConfig(n_rows=10, extra_columns=("bogus",)))


# ---------------------------------------------------------------------------
# selectivity
# ---------------------------------------------------------------------------


def test_predicate_builder_hits_targets(env):
    table = build_lineitem(env, LineitemConfig(n_rows=1 << 14))
    builder = PredicateBuilder(table, "extendedprice")
    for target in (2.0**-10, 2.0**-5, 0.25, 1.0):
        predicate, achieved = builder.range_for_selectivity(target)
        real = achieved_selectivity(table.column("extendedprice"), predicate)
        assert real == pytest.approx(achieved)
        assert achieved == pytest.approx(target, rel=0.5) or achieved >= target


def test_predicate_builder_full_range(env):
    table = build_lineitem(env, LineitemConfig(n_rows=1000))
    builder = PredicateBuilder(table, "partkey")
    predicate, achieved = builder.range_for_selectivity(1.0)
    assert achieved == 1.0
    assert predicate.hi == builder.domain_max


def test_predicate_builder_validates_target(env):
    table = build_lineitem(env, LineitemConfig(n_rows=100))
    builder = PredicateBuilder(table, "partkey")
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(WorkloadError):
            builder.range_for_selectivity(bad)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1e-4, max_value=1.0))
def test_achieved_close_to_target_property(target):
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1 << 20, 1 << 13)

    class FakeTable:
        def column(self, _name):
            return values

    builder = PredicateBuilder.__new__(PredicateBuilder)
    builder.table = FakeTable()
    builder.column = "x"
    builder._sorted = np.sort(values)
    builder._n = values.size
    predicate, achieved = builder.range_for_selectivity(target)
    # Achieved row count is within one grid step of the ideal count.
    assert abs(achieved * values.size - target * values.size) <= max(
        2, 0.02 * target * values.size + 2
    )


def test_queries_oracle(env):
    table = build_lineitem(env, LineitemConfig(n_rows=2000))
    pa = ColumnRange("partkey", 0, 1 << 18)
    pb = ColumnRange("extendedprice", 0, 1 << 19)
    q2 = TwoPredicateQuery(pa, pb)
    expected = np.flatnonzero(
        pa.mask(table.column("partkey")) & pb.mask(table.column("extendedprice"))
    )
    assert np.array_equal(q2.oracle_rids(table), expected)
    q1 = SinglePredicateQuery(pb)
    assert np.array_equal(
        q1.oracle_rids(table), np.flatnonzero(pb.mask(table.column("extendedprice")))
    )
