"""Unit and property tests for the B+-tree."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import StorageError
from repro.sim.profile import DeviceProfile
from repro.storage.btree import BPlusTree
from repro.storage.env import StorageEnv


def make_tree(entry_bytes=64, page_size=512, pool_pages=256):
    env = StorageEnv(DeviceProfile(page_size=page_size), pool_pages=pool_pages)
    return BPlusTree(env, "t", entry_bytes=entry_bytes), env


def bulk(keys, values=None):
    tree, env = make_tree()
    keys = np.asarray(keys, dtype=np.int64)
    payload = {"v": np.asarray(values if values is not None else keys)}
    tree.bulk_load(keys, payload)
    return tree, env


def test_empty_tree():
    tree, _env = make_tree()
    assert tree.n_entries == 0
    assert tree.height == 1
    keys, payload = tree.scan_all()
    assert keys.size == 0


def test_bulk_load_requires_sorted():
    tree, _env = make_tree()
    with pytest.raises(StorageError):
        tree.bulk_load(np.array([3, 1, 2]), {"v": np.array([0, 0, 0])})


def test_bulk_load_rejects_misaligned_payload():
    tree, _env = make_tree()
    with pytest.raises(StorageError):
        tree.bulk_load(np.array([1, 2, 3]), {"v": np.array([0])})


def test_bulk_load_leaves_consecutive_pages():
    tree, _env = bulk(np.arange(1000))
    pages = tree.flat.leaf_pages
    assert np.array_equal(pages, np.arange(pages.size))


def test_height_grows_with_size():
    small, _ = bulk(np.arange(4))
    large, _ = bulk(np.arange(5000))
    assert large.height > small.height
    large.validate()


def test_scan_all_returns_everything_in_order():
    keys = np.sort(np.random.default_rng(0).integers(0, 1 << 30, 3000))
    tree, _env = bulk(keys, values=np.arange(3000))
    out_keys, payload = tree.scan_all()
    assert np.array_equal(out_keys, keys)
    assert np.array_equal(payload["v"], np.arange(3000))


def test_read_range_matches_oracle():
    rng = np.random.default_rng(1)
    raw = rng.integers(0, 1000, 2000)
    order = np.argsort(raw, kind="stable")
    tree, _env = bulk(raw[order], values=order)
    keys, payload = tree.read_range(100, 300)
    mask = (raw >= 100) & (raw <= 300)
    assert keys.size == mask.sum()
    assert set(payload["v"].tolist()) == set(np.flatnonzero(mask).tolist())


def test_read_range_empty_range():
    tree, _env = bulk(np.arange(100))
    keys, _payload = tree.read_range(1000, 2000)
    assert keys.size == 0


def test_read_range_charges_io():
    tree, env = bulk(np.arange(5000))
    before = env.clock.now
    tree.read_range(0, 4999)
    assert env.clock.now > before


def test_probe_finds_duplicates_across_leaves():
    # Many duplicates of one key force duplicates to span leaves.
    keys = np.sort(np.concatenate([np.full(50, 7), np.arange(100) * 10 + 100]))
    tree, _env = bulk(keys, values=np.arange(keys.size))
    found, payload = tree.probe(7)
    assert found.size == 50
    assert np.all(found == 7)


def test_probe_missing_key():
    tree, _env = bulk(np.arange(0, 100, 2))
    found, _payload = tree.probe(3)
    assert found.size == 0


def test_next_key_after():
    tree, _env = bulk(np.array([1, 5, 5, 9]))
    assert tree.next_key_after(0) == 1
    assert tree.next_key_after(5) == 9
    assert tree.next_key_after(9) is None


def test_insert_into_empty_tree():
    tree, _env = make_tree()
    tree.insert(5, {"v": 50})
    assert tree.n_entries == 1
    found, payload = tree.probe(5)
    assert payload["v"][0] == 50


def test_insert_splits_and_validates():
    tree, _env = make_tree(entry_bytes=128, page_size=512)  # capacity 4
    for i in range(100):
        tree.insert(i * 3 % 97, {"v": i})
        tree.validate()
    assert tree.n_entries == 100
    assert tree.height >= 3


def test_insert_rejects_wrong_schema():
    tree, _env = make_tree()
    tree.insert(1, {"v": 1})
    with pytest.raises(StorageError):
        tree.insert(2, {"other": 2})


def test_delete_missing_returns_false():
    tree, _env = bulk(np.array([1, 2, 3]))
    assert not tree.delete(99)
    assert tree.n_entries == 3


def test_delete_one_duplicate_only():
    tree, _env = bulk(np.array([5, 5, 5]))
    assert tree.delete(5)
    assert tree.n_entries == 2


def test_delete_to_empty_leaf_unlinks():
    tree, _env = make_tree(entry_bytes=128, page_size=512)
    for i in range(50):
        tree.insert(i, {"v": i})
    for i in range(50):
        assert tree.delete(i)
        tree.validate()
    assert tree.n_entries == 0


def test_probe_charges_pool_accesses():
    tree, env = bulk(np.arange(5000))
    env.cold_reset()
    before = env.pool.stats.accesses
    tree.probe(2500)
    assert env.pool.stats.accesses - before >= tree.height


def test_split_pages_allocated_at_end():
    tree, _env = bulk(np.arange(1000))
    n_pages_before = tree.n_pages
    for i in range(200):
        tree.insert(500, {"v": i})
    assert tree.n_pages > n_pages_before
    tree.validate()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 50)),
        max_size=120,
    )
)
def test_btree_matches_sorted_list_oracle(operations):
    """Random inserts/deletes: tree contents equal a sorted-list oracle."""
    tree, _env = make_tree(entry_bytes=128, page_size=512)
    oracle: list[int] = []
    for op, key in operations:
        if op == "insert":
            tree.insert(key, {"v": key})
            oracle.append(key)
        else:
            deleted = tree.delete(key)
            assert deleted == (key in oracle)
            if deleted:
                oracle.remove(key)
    tree.validate()
    assert np.array_equal(tree.flat.keys, np.sort(np.asarray(oracle, dtype=np.int64)))


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 10000), min_size=1, max_size=400),
    st.integers(0, 10000),
    st.integers(0, 10000),
)
def test_range_scan_matches_oracle(keys, bound1, bound2):
    lo, hi = min(bound1, bound2), max(bound1, bound2)
    sorted_keys = np.sort(np.asarray(keys, dtype=np.int64))
    tree, _env = make_tree(entry_bytes=128, page_size=512)
    tree.bulk_load(sorted_keys, {"v": np.arange(sorted_keys.size)})
    found, _payload = tree.read_range(lo, hi)
    expected = sorted_keys[(sorted_keys >= lo) & (sorted_keys <= hi)]
    assert np.array_equal(found, expected)


def test_fill_factor_spreads_leaves():
    keys = np.arange(1000)
    full, _ = bulk(keys)
    tree_loose, _env = make_tree()
    tree_loose.bulk_load(keys, {"v": keys}, fill_factor=0.5)
    assert tree_loose.n_leaves > full.n_leaves
    tree_loose.validate()


def test_fill_factor_validation():
    tree, _env = make_tree()
    with pytest.raises(StorageError):
        tree.bulk_load(np.arange(10), {"v": np.arange(10)}, fill_factor=0.01)
