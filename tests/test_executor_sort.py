"""Unit and property tests for external sort and aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.executor.aggregate import HashAggregate, StreamAggregate
from repro.executor.context import ExecContext
from repro.executor.sort import ExternalSort, SpillPolicy


def ctx_with_memory(env, memory_bytes):
    return ExecContext(env, memory_bytes=memory_bytes)


def test_in_memory_sort_correct(env, rng):
    ctx = ctx_with_memory(env, 1 << 20)
    values = rng.integers(0, 1 << 30, 1000)
    result = ExternalSort(ctx).sort(values)
    assert np.array_equal(result.values, np.sort(values))
    assert not result.spilled
    assert result.n_runs == 1


def test_spilled_sort_correct(env, rng):
    ctx = ctx_with_memory(env, 8 * 100)  # room for 100 rows
    values = rng.integers(0, 1 << 30, 1000)
    result = ExternalSort(ctx, policy=SpillPolicy.GRACEFUL).sort(values)
    assert np.array_equal(result.values, np.sort(values))
    assert result.spilled


def test_graceful_spills_only_overflow(env, rng):
    memory_rows = 100
    ctx = ctx_with_memory(env, 8 * memory_rows)
    values = rng.integers(0, 100, memory_rows + 7)
    result = ExternalSort(ctx, policy=SpillPolicy.GRACEFUL).sort(values)
    assert result.spilled_rows == 7


def test_all_or_nothing_spills_everything(env, rng):
    memory_rows = 100
    ctx = ctx_with_memory(env, 8 * memory_rows)
    values = rng.integers(0, 100, memory_rows + 1)
    result = ExternalSort(ctx, policy=SpillPolicy.ALL_OR_NOTHING).sort(values)
    assert result.spilled_rows == memory_rows + 1


def test_cliff_at_memory_boundary(env, rng):
    """One extra record: all-or-nothing jumps, graceful barely moves (§4)."""
    row_bytes = 128
    memory_bytes = 64 * 1024
    memory_rows = memory_bytes // row_bytes

    def cost(n, policy):
        env.cold_reset()
        ctx = ctx_with_memory(env, memory_bytes)
        values = rng.integers(0, 1 << 30, n)
        start = env.clock.now
        ExternalSort(ctx, row_bytes=row_bytes, policy=policy).sort(values)
        return env.clock.now - start

    at_limit_naive = cost(memory_rows, SpillPolicy.ALL_OR_NOTHING)
    over_naive = cost(memory_rows + 1, SpillPolicy.ALL_OR_NOTHING)
    at_limit_graceful = cost(memory_rows, SpillPolicy.GRACEFUL)
    over_graceful = cost(memory_rows + 1, SpillPolicy.GRACEFUL)
    naive_jump = over_naive / at_limit_naive
    graceful_jump = over_graceful / at_limit_graceful
    assert naive_jump > 1.5
    assert graceful_jump < naive_jump


def test_sort_rejects_bad_row_bytes(env):
    with pytest.raises(ExecutionError):
        ExternalSort(ExecContext(env), row_bytes=0)


def test_spill_path_holds_a_memory_grant(env, rng):
    """Spilling sorts must account for their workspace like in-memory ones.

    The old spill path never took a broker grant for its ``memory_rows``
    workspace, so a spilling sort looked memory-free to any concurrent
    accounting.  Observe the broker at the moment runs are written.
    """
    memory_bytes = 8 * 100
    ctx = ctx_with_memory(env, memory_bytes)
    in_use_at_spill = []
    original_write_run = ctx.temp.write_run

    def spying_write_run(n_rows, row_bytes):
        in_use_at_spill.append(ctx.broker.in_use_bytes)
        return original_write_run(n_rows, row_bytes)

    ctx.temp.write_run = spying_write_run
    values = rng.integers(0, 1 << 30, 1000)
    result = ExternalSort(ctx, policy=SpillPolicy.GRACEFUL).sort(values)
    assert result.spilled
    assert in_use_at_spill  # the spill path ran
    assert all(used > 0 for used in in_use_at_spill)
    assert ctx.broker.in_use_bytes == 0  # and released afterwards


def test_spill_grant_survives_tiny_memory(env, rng):
    """The max(2, ...) row clamp must not over-grant past the limit."""
    ctx = ctx_with_memory(env, 8)  # room for a single 8-byte row
    values = rng.integers(0, 1 << 30, 64)
    result = ExternalSort(ctx, policy=SpillPolicy.ALL_OR_NOTHING).sort(values)
    assert np.array_equal(result.values, np.sort(values))
    assert ctx.broker.in_use_bytes == 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 1 << 30), max_size=500),
    st.sampled_from([SpillPolicy.GRACEFUL, SpillPolicy.ALL_OR_NOTHING]),
    st.integers(16, 4096),
)
def test_sort_always_correct_property(values, policy, memory_bytes):
    from repro.sim.profile import DeviceProfile
    from repro.storage import StorageEnv

    env = StorageEnv(DeviceProfile(page_size=512), pool_pages=16)
    ctx = ExecContext(env, memory_bytes=memory_bytes)
    arr = np.asarray(values, dtype=np.int64)
    result = ExternalSort(ctx, policy=policy).sort(arr) if arr.size else None
    if result is not None:
        assert np.array_equal(result.values, np.sort(arr))


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def test_hash_aggregate_counts(env, rng):
    ctx = ExecContext(env)
    keys = rng.integers(0, 20, 5000)
    groups, counts = HashAggregate(ctx).groupby_count(keys)
    expected_groups, expected_counts = np.unique(keys, return_counts=True)
    assert np.array_equal(groups, expected_groups)
    assert np.array_equal(counts, expected_counts)


def test_hash_aggregate_empty(env):
    ctx = ExecContext(env)
    groups, counts = HashAggregate(ctx).groupby_count(np.array([]))
    assert groups.size == 0 and counts.size == 0


def test_hash_aggregate_spills_when_many_groups(env, rng):
    keys = rng.integers(0, 100000, 20000)
    env.cold_reset()
    small_ctx = ExecContext(env, memory_bytes=4096)
    start = env.clock.now
    HashAggregate(small_ctx).groupby_count(keys)
    spilling = env.clock.now - start

    env.cold_reset()
    big_ctx = ExecContext(env, memory_bytes=1 << 24)
    start = env.clock.now
    HashAggregate(big_ctx).groupby_count(keys)
    in_memory = env.clock.now - start
    assert spilling > 2 * in_memory


def test_stream_aggregate_requires_sorted(env):
    ctx = ExecContext(env)
    with pytest.raises(ExecutionError):
        StreamAggregate(ctx).groupby_count(np.array([3, 1, 2]))


def test_stream_aggregate_counts(env, rng):
    ctx = ExecContext(env)
    keys = np.sort(rng.integers(0, 50, 3000))
    groups, counts = StreamAggregate(ctx).groupby_count(keys)
    expected_groups, expected_counts = np.unique(keys, return_counts=True)
    assert np.array_equal(groups, expected_groups)
    assert np.array_equal(counts, expected_counts)


@given(st.lists(st.integers(0, 30), max_size=300))
def test_aggregates_agree_property(keys):
    from repro.sim.profile import DeviceProfile
    from repro.storage import StorageEnv

    env = StorageEnv(DeviceProfile(page_size=512), pool_pages=16)
    arr = np.asarray(sorted(keys), dtype=np.int64)
    hash_groups, hash_counts = HashAggregate(ExecContext(env)).groupby_count(arr)
    stream_groups, stream_counts = StreamAggregate(ExecContext(env)).groupby_count(arr)
    assert np.array_equal(hash_groups, stream_groups)
    assert np.array_equal(hash_counts, stream_counts)
