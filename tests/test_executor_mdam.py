"""Property and unit tests for MDAM scans."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import PlanError
from repro.executor.context import ExecContext
from repro.executor.mdam import _positions_from_spans, mdam_scan
from repro.sim.profile import DeviceProfile
from repro.storage import StorageEnv, Table


def build(a_vals, b_vals):
    env = StorageEnv(DeviceProfile(page_size=1024), pool_pages=64)
    table = Table(env, "t", {"a": np.asarray(a_vals), "b": np.asarray(b_vals)})
    index = table.create_index("idx_ab", ["a", "b"])
    return env, table, index


def test_positions_from_spans():
    starts = np.array([0, 5, 9])
    ends = np.array([2, 5, 12])
    assert _positions_from_spans(starts, ends).tolist() == [0, 1, 9, 10, 11]


def test_positions_from_spans_empty():
    assert _positions_from_spans(np.array([3]), np.array([3])).size == 0


def test_mdam_requires_composite_index(indexed_table, env):
    ctx = ExecContext(env)
    with pytest.raises(PlanError):
        mdam_scan(ctx, indexed_table.index("idx_a"), (0, 1), (0, 1))


def test_mdam_matches_brute_force_basic():
    rng = np.random.default_rng(3)
    env, table, index = build(
        rng.integers(0, 50, 3000), rng.integers(0, 10000, 3000)
    )
    ctx = ExecContext(env)
    result = mdam_scan(ctx, index, (10, 30), (2000, 7000))
    mask = (
        (table.column("a") >= 10)
        & (table.column("a") <= 30)
        & (table.column("b") >= 2000)
        & (table.column("b") <= 7000)
    )
    assert set(result.rids.tolist()) == set(np.flatnonzero(mask).tolist())
    assert np.array_equal(result.columns["a"], table.column("a")[result.rids])


def test_mdam_empty_leading_range():
    env, _table, index = build(np.array([1, 2, 3]), np.array([1, 2, 3]))
    ctx = ExecContext(env)
    result = mdam_scan(ctx, index, (10, 20), (0, 10))
    assert result.n_rows == 0


def test_mdam_empty_trailing_range():
    env, _table, index = build(np.array([1, 2, 3]), np.array([10, 20, 30]))
    ctx = ExecContext(env)
    result = mdam_scan(ctx, index, (1, 3), (100, 200))
    assert result.n_rows == 0


def test_mdam_skips_leaves_on_selective_trailing():
    """With coarse leading groups, a selective trailing range reads far
    fewer pages than the bounding range scan — the MDAM advantage."""
    rng = np.random.default_rng(5)
    n = 20000
    env, table, index = build(rng.integers(0, 16, n), rng.integers(0, 1 << 20, n))

    env.cold_reset()
    ctx = ExecContext(env)
    before = env.disk.stats.pages_read
    mdam_scan(ctx, index, (0, 15), (0, 1000))
    mdam_pages = env.disk.stats.pages_read - before

    env.cold_reset()
    before = env.disk.stats.pages_read
    index.read_range(*index.key_range_for({"a": (0, 15)}))
    full_pages = env.disk.stats.pages_read - before
    assert mdam_pages < full_pages / 4


def test_mdam_bounded_by_index_scan_cost():
    """Even in the worst case MDAM costs about one covering index scan."""
    rng = np.random.default_rng(6)
    n = 20000
    env, table, index = build(
        rng.integers(0, 1 << 20, n), rng.integers(0, 1 << 20, n)
    )
    env.cold_reset()
    ctx = ExecContext(env)
    start = env.clock.now
    mdam_scan(ctx, index, (0, (1 << 20) - 1), (0, (1 << 20) - 1))
    mdam_cost = env.clock.now - start

    env.cold_reset()
    start = env.clock.now
    index.scan_all(charge=True)
    scan_cost = env.clock.now - start
    assert mdam_cost < 25 * scan_cost


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    n_rows=st.integers(10, 400),
    a_card=st.integers(1, 40),
)
def test_mdam_matches_brute_force_property(data, n_rows, a_card):
    seed = data.draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = rng.integers(0, a_card, n_rows)
    b = rng.integers(0, 1000, n_rows)
    env, table, index = build(a, b)
    a_lo = data.draw(st.integers(0, a_card - 1))
    a_hi = data.draw(st.integers(a_lo, a_card - 1))
    b_lo = data.draw(st.integers(0, 999))
    b_hi = data.draw(st.integers(b_lo, 999))
    ctx = ExecContext(env)
    result = mdam_scan(ctx, index, (a_lo, a_hi), (b_lo, b_hi))
    mask = (a >= a_lo) & (a <= a_hi) & (b >= b_lo) & (b <= b_hi)
    assert sorted(result.rids.tolist()) == sorted(np.flatnonzero(mask).tolist())
