"""Tests for parameter spaces and the MapData container."""

import numpy as np
import pytest

from repro.core.mapdata import MapData
from repro.core.parameter_space import Space1D, Space2D, log2_targets
from repro.errors import ExperimentError


def test_log2_targets_factor_of_two():
    targets = log2_targets(-4, 0)
    assert targets.tolist() == [2.0**-4, 2.0**-3, 2.0**-2, 2.0**-1, 1.0]


def test_log2_targets_per_octave():
    targets = log2_targets(-1, 0, per_octave=2)
    assert len(targets) == 3
    assert targets[0] == pytest.approx(0.5)


def test_log2_targets_validation():
    with pytest.raises(ExperimentError):
        log2_targets(0, -1)
    with pytest.raises(ExperimentError):
        log2_targets(-2, 0, per_octave=0)


def test_space1d_validation():
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([]))
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([0.5, 0.5]))
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([0.5, 0.25]))


def test_space2d_shape():
    space = Space2D.log2("a", "b", -3, 0)
    assert space.shape == (4, 4)
    assert space.n_cells == 16


def make_map(two_d=False):
    plan_ids = ["p1", "p2"]
    if two_d:
        times = np.array(
            [[[1.0, 2.0], [3.0, 4.0]], [[2.0, 1.0], [np.nan, 8.0]]]
        )
        rows = np.array([[1, 2], [3, 4]])
        return MapData(
            plan_ids=plan_ids,
            times=times,
            aborted=np.isnan(times),
            rows=rows,
            x_targets=np.array([0.5, 1.0]),
            x_achieved=np.array([0.5, 1.0]),
            y_targets=np.array([0.5, 1.0]),
            y_achieved=np.array([0.5, 1.0]),
        )
    times = np.array([[1.0, 2.0, 4.0], [2.0, np.nan, 3.0]])
    return MapData(
        plan_ids=plan_ids,
        times=times,
        aborted=np.isnan(times),
        rows=np.array([1, 2, 4]),
        x_targets=np.array([0.25, 0.5, 1.0]),
        x_achieved=np.array([0.25, 0.5, 1.0]),
    )


def test_mapdata_accessors():
    mapdata = make_map()
    assert not mapdata.is_2d
    assert mapdata.grid_shape == (3,)
    assert mapdata.n_plans == 2
    assert mapdata.plan_index("p2") == 1
    assert np.array_equal(mapdata.times_for("p1"), [1.0, 2.0, 4.0])


def test_mapdata_unknown_plan():
    with pytest.raises(ExperimentError):
        make_map().plan_index("nope")


def test_mapdata_shape_validation():
    with pytest.raises(ExperimentError):
        MapData(
            plan_ids=["p"],
            times=np.zeros((1, 3)),
            aborted=np.zeros((1, 2), dtype=bool),
            rows=np.zeros(3, dtype=int),
            x_targets=np.arange(3.0) + 1,
            x_achieved=np.arange(3.0) + 1,
        )


def test_mapdata_subset():
    mapdata = make_map()
    sub = mapdata.subset(["p2"])
    assert sub.plan_ids == ["p2"]
    assert sub.times.shape == (1, 3)
    # Subset is a copy.
    sub.times[0, 0] = 99.0
    assert mapdata.times[1, 0] == 2.0


@pytest.mark.parametrize("two_d", [False, True])
def test_mapdata_json_roundtrip(tmp_path, two_d):
    mapdata = make_map(two_d)
    path = tmp_path / "map.json"
    mapdata.save(path)
    loaded = MapData.load(path)
    assert loaded.plan_ids == mapdata.plan_ids
    assert np.allclose(loaded.times, mapdata.times, equal_nan=True)
    assert np.array_equal(loaded.aborted, mapdata.aborted)
    assert np.array_equal(loaded.rows, mapdata.rows)
    if two_d:
        assert np.allclose(loaded.y_targets, mapdata.y_targets)
