"""Tests for parameter spaces and the MapData container."""

import numpy as np
import pytest

from repro.core.mapdata import MapData
from repro.core.parameter_space import Space1D, Space2D, log2_targets
from repro.errors import ExperimentError


def test_log2_targets_factor_of_two():
    targets = log2_targets(-4, 0)
    assert targets.tolist() == [2.0**-4, 2.0**-3, 2.0**-2, 2.0**-1, 1.0]


def test_log2_targets_per_octave():
    targets = log2_targets(-1, 0, per_octave=2)
    assert len(targets) == 3
    assert targets[0] == pytest.approx(0.5)


def test_log2_targets_validation():
    with pytest.raises(ExperimentError):
        log2_targets(0, -1)
    with pytest.raises(ExperimentError):
        log2_targets(-2, 0, per_octave=0)


def test_space1d_validation():
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([]))
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([0.5, 0.5]))
    with pytest.raises(ExperimentError):
        Space1D("x", np.array([0.5, 0.25]))


def test_space2d_shape():
    space = Space2D.log2("a", "b", -3, 0)
    assert space.shape == (4, 4)
    assert space.n_cells == 16


def make_map(two_d=False):
    plan_ids = ["p1", "p2"]
    if two_d:
        times = np.array(
            [[[1.0, 2.0], [3.0, 4.0]], [[2.0, 1.0], [np.nan, 8.0]]]
        )
        rows = np.array([[1, 2], [3, 4]])
        return MapData(
            plan_ids=plan_ids,
            times=times,
            aborted=np.isnan(times),
            rows=rows,
            x_targets=np.array([0.5, 1.0]),
            x_achieved=np.array([0.5, 1.0]),
            y_targets=np.array([0.5, 1.0]),
            y_achieved=np.array([0.5, 1.0]),
        )
    times = np.array([[1.0, 2.0, 4.0], [2.0, np.nan, 3.0]])
    return MapData(
        plan_ids=plan_ids,
        times=times,
        aborted=np.isnan(times),
        rows=np.array([1, 2, 4]),
        x_targets=np.array([0.25, 0.5, 1.0]),
        x_achieved=np.array([0.25, 0.5, 1.0]),
    )


def test_mapdata_accessors():
    mapdata = make_map()
    assert not mapdata.is_2d
    assert mapdata.grid_shape == (3,)
    assert mapdata.n_plans == 2
    assert mapdata.plan_index("p2") == 1
    assert np.array_equal(mapdata.times_for("p1"), [1.0, 2.0, 4.0])


def test_mapdata_unknown_plan():
    with pytest.raises(ExperimentError):
        make_map().plan_index("nope")


def test_mapdata_shape_validation():
    with pytest.raises(ExperimentError):
        MapData(
            plan_ids=["p"],
            times=np.zeros((1, 3)),
            aborted=np.zeros((1, 2), dtype=bool),
            rows=np.zeros(3, dtype=int),
            x_targets=np.arange(3.0) + 1,
            x_achieved=np.arange(3.0) + 1,
        )


def test_mapdata_subset():
    mapdata = make_map()
    sub = mapdata.subset(["p2"])
    assert sub.plan_ids == ["p2"]
    assert sub.times.shape == (1, 3)
    # Subset is a copy.
    sub.times[0, 0] = 99.0
    assert mapdata.times[1, 0] == 2.0


@pytest.mark.parametrize("two_d", [False, True])
def test_mapdata_json_roundtrip(tmp_path, two_d):
    mapdata = make_map(two_d)
    mapdata.meta = {"sweep": "test", "budget_seconds": 1.5, "cells": [0, 1]}
    path = tmp_path / "map.json"
    mapdata.save(path)
    loaded = MapData.load(path)
    assert loaded.plan_ids == mapdata.plan_ids
    # NaN cells survive exactly (bit-for-bit, not just allclose).
    assert np.array_equal(loaded.times, mapdata.times, equal_nan=True)
    assert np.isnan(loaded.times).any()
    assert np.array_equal(loaded.aborted, mapdata.aborted)
    assert np.array_equal(loaded.rows, mapdata.rows)
    assert loaded.rows.dtype == np.int64
    assert loaded.meta == mapdata.meta
    if two_d:
        assert np.allclose(loaded.y_targets, mapdata.y_targets)
    else:
        assert loaded.y_targets is None and loaded.y_achieved is None


def test_mapdata_roundtrip_int64_rows(tmp_path):
    mapdata = make_map()
    mapdata.rows = np.array([1, 2, 2**40], dtype=np.int64)
    path = tmp_path / "map.json"
    mapdata.save(path)
    loaded = MapData.load(path)
    assert loaded.rows[2] == 2**40
    assert loaded.rows.dtype == np.int64


# ---------------------------------------------------------------------------
# merging partial maps
# ---------------------------------------------------------------------------


def split_map(mapdata, cells_a, cells_b):
    """Simulate two partial sweeps of one grid."""
    import copy

    def restrict(cells):
        part = copy.deepcopy(mapdata)
        shape = part.grid_shape
        keep = np.zeros(int(np.prod(shape)), dtype=bool)
        keep[list(cells)] = True
        mask = keep.reshape(shape)
        part.times[:, ~mask] = np.nan
        part.aborted[:, ~mask] = False
        part.rows = np.where(mask, part.rows, 0)
        part.meta = dict(part.meta, cells=sorted(cells))
        return part

    return restrict(cells_a), restrict(cells_b)


@pytest.mark.parametrize("two_d", [False, True])
def test_mapdata_merge_recovers_full_map(two_d):
    mapdata = make_map(two_d)
    n_cells = int(np.prod(mapdata.grid_shape))
    evens = [c for c in range(n_cells) if c % 2 == 0]
    odds = [c for c in range(n_cells) if c % 2 == 1]
    part_a, part_b = split_map(mapdata, evens, odds)
    merged = MapData.merge([part_b, part_a])
    assert np.array_equal(merged.times, mapdata.times, equal_nan=True)
    assert np.array_equal(merged.aborted, mapdata.aborted)
    assert np.array_equal(merged.rows, mapdata.rows)
    assert "cells" not in merged.meta


def test_mapdata_merge_partial_union_stays_partial():
    mapdata = make_map()
    part_a, part_b = split_map(mapdata, [0], [2])
    merged = MapData.merge([part_a, part_b])
    assert merged.is_partial
    assert merged.filled_cells.tolist() == [0, 2]
    assert merged.rows[1] == 0


def test_mapdata_merge_rejects_overlap_and_mismatch():
    mapdata = make_map()
    part_a, part_b = split_map(mapdata, [0, 1], [1, 2])
    with pytest.raises(ExperimentError, match="overlap"):
        MapData.merge([part_a, part_b])
    full = make_map()
    with pytest.raises(ExperimentError, match="partial"):
        MapData.merge([full])
    with pytest.raises(ExperimentError):
        MapData.merge([])
    other = make_map()
    other.plan_ids = ["p1", "other"]
    part_c, _ = split_map(other, [0], [1])
    with pytest.raises(ExperimentError, match="plan ids"):
        MapData.merge([part_a, part_c])


def test_mapdata_merge_duplicate_cells_raise_even_with_identical_data():
    """The documented overlap contract: raise, never last-write-win.

    Sweeps are deterministic, so a duplicate cell cannot legitimately
    carry different data — but a silent overwrite would let a buggy
    wave/chunk split hide itself, so identical duplicates raise too.
    """
    mapdata = make_map()
    part_a, _ = split_map(mapdata, [0, 1], [2])
    twin, _ = split_map(mapdata, [1], [2])  # same grid, same data at cell 1
    with pytest.raises(ExperimentError, match="overlap.*\\[1\\]"):
        MapData.merge([part_a, twin])


def test_mapdata_merge_non_contiguous_scattered_cells():
    """Adaptive waves produce scattered, non-contiguous cell subsets."""
    mapdata = make_map(two_d=True)
    part_a, part_b = split_map(mapdata, [0, 3], [2])
    merged = MapData.merge([part_b, part_a])
    assert merged.is_partial
    assert merged.filled_cells.tolist() == [0, 2, 3]
    assert np.array_equal(merged.measured_mask, np.array([[True, False], [True, True]]))
    flat = merged.times.reshape(merged.n_plans, -1)
    full = mapdata.times.reshape(mapdata.n_plans, -1)
    assert np.array_equal(flat[:, [0, 2, 3]], full[:, [0, 2, 3]], equal_nan=True)
    assert np.isnan(flat[:, 1]).all()


def test_mapdata_merge_disjoint_plan_subsets_raise():
    """Parts must cover the same plans; disjoint plan subsets raise."""
    part_a, part_b = split_map(make_map(), [0], [1])
    only_p1 = part_a.subset(["p1"])
    only_p2 = part_b.subset(["p2"])
    assert only_p1.is_partial and only_p2.is_partial  # subset keeps cells
    with pytest.raises(ExperimentError, match="plan ids"):
        MapData.merge([only_p1, only_p2])


def test_mapdata_merge_is_order_independent():
    """Any permutation of the parts merges to the bit-identical map."""
    mapdata = make_map(two_d=True)
    part_a, part_b = split_map(mapdata, [0, 3], [1])
    part_c, _ = split_map(mapdata, [2], [0])
    reference = MapData.merge([part_a, part_b, part_c])
    for order in ([part_c, part_b, part_a], [part_b, part_c, part_a]):
        merged = MapData.merge(order)
        assert np.array_equal(merged.times, reference.times, equal_nan=True)
        assert np.array_equal(merged.aborted, reference.aborted)
        assert np.array_equal(merged.rows, reference.rows)
        assert merged.meta == reference.meta
