"""Parallel sweep engine: chunking, merging, serial/parallel identity."""

import numpy as np
import pytest

from repro.core.mapdata import MapData
from repro.core.parallel import ParallelSweep, PlanIdFilter, partition_cells
from repro.core.parameter_space import Space1D, Space2D
from repro.core.progress import ProgressEvent
from repro.core.runner import Jitter, RobustnessSweep
from repro.errors import ExperimentError
from repro.systems import SystemA, SystemConfig
from repro.workloads import LineitemConfig

CONFIG = SystemConfig(lineitem=LineitemConfig(n_rows=2048), pool_pages=64)
JITTER = Jitter(rel=0.02, abs=0.0005, seed=7)


def build_system_a():
    """Module-level factory: picklable for worker processes."""
    return [SystemA(CONFIG)]


@pytest.fixture(scope="module")
def system_a():
    return SystemA(CONFIG)


# ---------------------------------------------------------------------------
# chunk partitioning
# ---------------------------------------------------------------------------


def test_partition_cells_covers_grid_disjointly():
    chunks = partition_cells(13, 4)
    flat = [c for chunk in chunks for c in chunk]
    assert sorted(flat) == list(range(13))
    assert len(chunks) == 4
    sizes = [len(chunk) for chunk in chunks]
    assert max(sizes) - min(sizes) <= 1


def test_partition_cells_clamps_chunk_count():
    assert partition_cells(3, 10) == [[0], [1], [2]]
    assert partition_cells(5, 1) == [[0, 1, 2, 3, 4]]
    with pytest.raises(ExperimentError):
        partition_cells(0, 2)


def test_plan_id_filter_is_picklable():
    import pickle

    keep = PlanIdFilter(["A.table_scan"])
    restored = pickle.loads(pickle.dumps(keep))
    assert restored("A.table_scan")
    assert not restored("A.merge_ab")


# ---------------------------------------------------------------------------
# partial sweeps + merge round out to the full map
# ---------------------------------------------------------------------------


def test_partial_sweeps_merge_to_full_1d(system_a):
    space = Space1D.log2("sel", -4, 0)
    sweep = RobustnessSweep([system_a], jitter=JITTER)
    full = sweep.sweep_single_predicate(space)
    part_a = sweep.sweep_single_predicate(space, cells=[0, 2, 4])
    part_b = sweep.sweep_single_predicate(space, cells=[1, 3])
    assert part_a.is_partial and part_b.is_partial
    assert part_a.filled_cells.tolist() == [0, 2, 4]
    merged = MapData.merge([part_a, part_b])
    assert not merged.is_partial
    assert merged.plan_ids == full.plan_ids
    assert np.array_equal(merged.times, full.times, equal_nan=True)
    assert np.array_equal(merged.aborted, full.aborted)
    assert np.array_equal(merged.rows, full.rows)
    assert merged.meta == full.meta


def test_shuffled_completion_order_merges_bit_identically(system_a):
    """Chunk parts arriving in any completion order yield one map.

    ``ParallelSweep`` sorts parts by first cell index before merging, so
    order-independence holds by construction; this exercises the same
    invariant at the MapData level with adversarial arrival orders.
    """
    import itertools

    space = Space1D.log2("sel", -4, 0)
    sweep = RobustnessSweep([system_a], jitter=JITTER)
    chunks = [[0, 1], [2], [3, 4]]
    parts = [
        sweep.sweep_single_predicate(space, cells=chunk) for chunk in chunks
    ]
    reference = MapData.merge(
        sorted(parts, key=lambda part: int(part.filled_cells[0]))
    )
    assert not reference.is_partial
    for order in itertools.permutations(parts):
        merged = MapData.merge(list(order))
        assert merged.plan_ids == reference.plan_ids
        assert np.array_equal(merged.times, reference.times, equal_nan=True)
        assert np.array_equal(merged.aborted, reference.aborted)
        assert np.array_equal(merged.rows, reference.rows)
        assert merged.meta == reference.meta


def test_partial_sweep_validates_cells(system_a):
    space = Space1D.log2("sel", -2, 0)
    sweep = RobustnessSweep([system_a])
    with pytest.raises(ExperimentError):
        sweep.sweep_single_predicate(space, cells=[0, 7])
    with pytest.raises(ExperimentError):
        sweep.sweep_single_predicate(space, cells=[1, 1])


# ---------------------------------------------------------------------------
# parallel vs serial: bit-identical maps
# ---------------------------------------------------------------------------


def assert_identical(parallel: MapData, serial: MapData) -> None:
    assert parallel.plan_ids == serial.plan_ids
    assert np.array_equal(parallel.times, serial.times, equal_nan=True)
    assert np.array_equal(parallel.aborted, serial.aborted)
    assert np.array_equal(parallel.rows, serial.rows)
    assert np.array_equal(parallel.x_targets, serial.x_targets)
    assert np.array_equal(parallel.x_achieved, serial.x_achieved)
    assert parallel.meta == serial.meta


def test_parallel_2d_bit_identical_to_serial(system_a):
    space = Space2D.log2("a", "b", -3, 0)
    serial = RobustnessSweep(
        [system_a], jitter=JITTER
    ).sweep_two_predicate(space)
    engine = ParallelSweep(
        build_system_a, jitter=JITTER, n_workers=2, chunk_cells=5
    )
    parallel = engine.sweep_two_predicate(space)
    assert_identical(parallel, serial)
    assert np.array_equal(parallel.y_targets, serial.y_targets)
    assert np.array_equal(parallel.y_achieved, serial.y_achieved)


def test_parallel_1d_bit_identical_to_serial(system_a):
    space = Space1D.log2("sel", -4, 0)
    serial = RobustnessSweep([system_a]).sweep_single_predicate(space)
    engine = ParallelSweep(build_system_a, n_workers=2)
    parallel = engine.sweep_single_predicate(space)
    assert_identical(parallel, serial)


def test_parallel_serial_fallback_matches(system_a):
    space = Space1D.log2("sel", -3, 0)
    serial = RobustnessSweep([system_a]).sweep_single_predicate(space)
    engine = ParallelSweep(build_system_a, n_workers=0)
    fallback = engine.sweep_single_predicate(space)
    assert_identical(fallback, serial)


def test_parallel_single_full_grid_chunk(system_a):
    """chunk_cells >= n_cells puts the whole grid in one chunk; the
    chunk part must stay mergeable (regression: the worker normalized
    it to a complete map and the parent's merge rejected it)."""
    space = Space1D.log2("sel", -3, 0)
    serial = RobustnessSweep([system_a]).sweep_single_predicate(space)
    engine = ParallelSweep(build_system_a, n_workers=2, chunk_cells=100)
    parallel = engine.sweep_single_predicate(space)
    assert_identical(parallel, serial)


def test_parallel_empty_cell_policy_matches_serial(system_a):
    """An empty explicit cell list yields the all-NaN partial map on
    both engines (regression: the parallel wave crashed partitioning
    zero cells)."""
    from repro.core.driver import DenseGridPolicy
    from repro.core.scenario import SinglePredicateScenario

    space = Space1D.log2("sel", -2, 0)
    scenario = SinglePredicateScenario([system_a], space)
    serial = RobustnessSweep([system_a]).sweep(
        scenario, policy=DenseGridPolicy(cells=[])
    )
    assert serial.is_partial and serial.filled_cells.size == 0
    assert np.isnan(serial.times).all()
    engine = ParallelSweep(build_system_a, n_workers=2)
    parallel = engine.sweep(scenario.spec(), policy=DenseGridPolicy(cells=[]))
    assert_identical(parallel, serial)


def test_parallel_respects_plan_filter(system_a):
    space = Space1D.log2("sel", -2, 0)
    keep = PlanIdFilter(["A.table_scan"])
    engine = ParallelSweep(build_system_a, n_workers=2)
    mapdata = engine.sweep_single_predicate(space, plan_filter=keep)
    assert mapdata.plan_ids == ["A.table_scan"]


def test_parallel_reports_chunk_progress():
    space = Space1D.log2("sel", -3, 0)
    events = []
    engine = ParallelSweep(
        build_system_a, n_workers=2, chunk_cells=2, progress=events.append
    )
    engine.sweep_single_predicate(space)
    assert events
    # Structured events, no string sniffing: every field is typed.
    assert all(isinstance(event, ProgressEvent) for event in events)
    assert all(event.kind == "chunk" for event in events)
    assert [event.parts_done for event in events] == [1, 2]
    last = events[-1]
    assert last.done == last.total == 4
    assert last.elapsed >= 0.0
    # ... while the rendered line keeps the familiar shape.
    assert "sweep: 4/4 cells" in last.render()
    assert "eta" in events[0].render() or events[0].done == events[0].total


# ---------------------------------------------------------------------------
# duplicate plan id detection (dict-collision bugfix)
# ---------------------------------------------------------------------------


def test_duplicate_plan_ids_raise(system_a):
    twin = SystemA(CONFIG)  # same name -> identical qualified plan ids
    sweep = RobustnessSweep([system_a, twin])
    with pytest.raises(ExperimentError, match="duplicate plan ids"):
        sweep.sweep_single_predicate(Space1D.log2("sel", -2, 0))
    with pytest.raises(ExperimentError, match="duplicate plan ids"):
        sweep.sweep_two_predicate(Space2D.log2("a", "b", -1, 0))
