"""Integration tests: every figure function runs end-to-end at tiny scale.

Scale-dependent claims (absolute worst-case factors) are allowed to miss
at this scale; structural claims must hold.  The default-scale benches in
``benchmarks/`` assert the full claim set.
"""

import numpy as np
import pytest

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import BenchConfig, BenchSession
from repro.bench.report import Claim, claims_markdown, format_claims, series_block


@pytest.fixture(scope="module")
def session():
    return BenchSession(
        BenchConfig(n_rows=4096, min_exp_1d=-8, min_exp_2d=-5, cache_dir=None)
    )


#: Claims whose thresholds only hold at bench scale (>= 2^16 rows).
SCALE_DEPENDENT = {
    "worst-case quotient is orders of magnitude (disruptive in production)",
    "table scan / traditional index scan break-even exists at small selectivity",
    "several plans are optimal in different selectivity bands",
    "relative diagram resolves wide cost ranges (traditional plan far off best)",
    "improved index scan competitive with table scan to moderate selectivity",
    "traditional index scan worse by orders of magnitude at high selectivity",
    "relative performance is not smooth even where absolute is",
    "improved index scan ~2.5x table scan at 100% selectivity",
    "System B's worst quotient is better than the Fig 7 plan's",
    "close to optimal over a much larger region",
    "the two dimensions have very different effects",
    "hash-join plans do not exhibit this symmetry",
    # Tiny tables compress the regret range: every plan is within ~2x of
    # best, so policy differences (and their growth with error) vanish.
    "classic policy's worst-case regret grows with error magnitude",
    "robust policies cap worst-case regret at a bounded premium",
    "choice-map region boundaries shift as error grows",
}


@pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
def test_figure_runs_and_structural_claims_hold(session, figure_id):
    result = ALL_FIGURES[figure_id](session)
    assert result.claims, figure_id
    for claim in result.claims:
        if claim.claim in SCALE_DEPENDENT:
            continue
        assert claim.holds, f"{figure_id}: {claim.claim}: {claim.measured}"
    for name, artifact in result.artifacts.items():
        assert len(artifact) > 100, name
        if name.endswith(".svg"):
            assert artifact.lstrip().startswith("<svg")
        if name.endswith(".png"):
            assert artifact[:8] == b"\x89PNG\r\n\x1a\n"


@pytest.fixture(scope="module")
def refined_session():
    return BenchSession(
        BenchConfig(
            n_rows=4096,
            min_exp_1d=-8,
            min_exp_2d=-5,
            cache_dir=None,
            refine=True,
        )
    )


@pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
def test_figure_claims_hold_on_refined_maps(refined_session, figure_id):
    """Every figure must survive densify()-ed adaptively refined maps."""
    result = ALL_FIGURES[figure_id](refined_session)
    assert result.claims, figure_id
    for claim in result.claims:
        if claim.claim in SCALE_DEPENDENT:
            continue
        assert claim.holds, f"{figure_id}: {claim.claim}: {claim.measured}"


def test_figures_cover_the_whole_paper():
    for n in range(1, 11):
        assert f"fig{n:02d}" in ALL_FIGURES


def test_session_caches_sweeps(session):
    first = session.two_predicate_map()
    second = session.two_predicate_map()
    assert first is second


def test_disk_cache_roundtrip(tmp_path):
    config = BenchConfig(
        n_rows=2048, min_exp_1d=-4, min_exp_2d=-3, cache_dir=str(tmp_path)
    )
    s1 = BenchSession(config)
    m1 = s1.single_predicate_map()
    s2 = BenchSession(config)
    m2 = s2.single_predicate_map()
    assert m2.plan_ids == m1.plan_ids
    assert np.allclose(m2.times, m1.times, equal_nan=True)
    assert list(tmp_path.glob("*.json"))


def test_system_a_plan_ids(session):
    ids = session.system_a_plan_ids()
    assert len(ids) == 7
    assert all(plan_id.startswith("A.") for plan_id in ids)


def test_budget_positive(session):
    assert session.budget() > 0


# ---------------------------------------------------------------------------
# report formatting
# ---------------------------------------------------------------------------


def _claim(holds=True):
    return Claim("figX", "something holds", "paper says", "we measured", holds)


def test_format_claims():
    text = format_claims("Title", [_claim(), _claim(False)])
    assert "[OK ]" in text and "[MISS]" in text
    assert "1/2 claims hold" in text


def test_claims_markdown_table():
    text = claims_markdown([_claim()])
    assert text.startswith("| Figure |")
    assert "| figX |" in text


def test_series_block_formats_nan():
    text = series_block("t", [0.5, 1.0], {"p": [1.0, float("nan")]})
    assert "nan" in text
    assert "1.0000" in text
