"""Unit tests for tables and secondary indexes."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import StorageEnv, Table
from tests.conftest import SMALL_PROFILE, make_table


def test_table_rejects_empty_columns(env):
    with pytest.raises(StorageError):
        Table(env, "t", {})


def test_table_rejects_ragged_columns(env):
    with pytest.raises(StorageError):
        Table(env, "t", {"a": np.arange(3), "b": np.arange(4)})


def test_row_bytes_inferred(env):
    table = Table(env, "t", {"a": np.arange(10, dtype=np.int64)})
    assert table.row_bytes == 24 + 8


def test_geometry(table):
    assert table.n_rows == 4096
    assert table.rows_per_page == table.clustered.leaf_capacity
    assert table.n_pages == -(-table.n_rows // table.rows_per_page)


def test_column_access(table):
    assert table.column("a").size == table.n_rows
    with pytest.raises(StorageError):
        table.column("nope")


def test_pages_of_rids_monotone(table):
    rids = np.arange(table.n_rows)
    pages = table.pages_of_rids(rids)
    assert np.all(np.diff(pages) >= 0)
    assert pages[0] == 0
    assert pages[-1] == table.n_pages - 1


def test_pages_of_rids_out_of_range(table):
    with pytest.raises(StorageError):
        table.pages_of_rids(np.array([table.n_rows]))


def test_gather_matches_columns(table, rng):
    rids = rng.integers(0, table.n_rows, 100)
    out = table.gather(rids, ["a", "val"])
    assert np.array_equal(out["a"], table.column("a")[rids])
    assert np.array_equal(out["val"], table.column("val")[rids])


def test_gather_all_columns_by_default(table):
    out = table.gather(np.array([0, 1]))
    assert set(out) == set(table.column_names)


def test_create_index_and_lookup(indexed_table):
    index = indexed_table.index("idx_a")
    assert index.key_columns == ("a",)
    lo, hi = index.key_range_for({"a": (100, 500)})
    keys, rids = index.read_range(lo, hi)
    mask = (indexed_table.column("a") >= 100) & (indexed_table.column("a") <= 500)
    assert keys.size == mask.sum()
    assert set(rids.tolist()) == set(np.flatnonzero(mask).tolist())


def test_duplicate_index_name_rejected(indexed_table):
    with pytest.raises(StorageError):
        indexed_table.create_index("idx_a", ["a"])


def test_unknown_index_rejected(table):
    with pytest.raises(StorageError):
        table.index("missing")


def test_negative_column_cannot_be_indexed(env):
    table = Table(env, "t", {"a": np.array([-1, 2, 3])})
    with pytest.raises(StorageError):
        table.create_index("idx", ["a"])


def test_composite_index_full_range_defaults(indexed_table):
    index = indexed_table.index("idx_ab")
    lo, hi = index.key_range_for({"a": (5, 10)})  # b unconstrained
    keys, _rids = index.read_range(lo, hi)
    a_vals = index.codec.decode(keys)[0]
    assert np.all((a_vals >= 5) & (a_vals <= 10))


def test_index_scan_all(indexed_table):
    index = indexed_table.index("idx_b")
    keys, rids = index.scan_all()
    assert keys.size == indexed_table.n_rows
    assert np.all(np.diff(keys) >= 0)
    assert set(rids.tolist()) == set(range(indexed_table.n_rows))


def test_index_entries_sorted_by_encoded_key(indexed_table):
    index = indexed_table.index("idx_ab")
    keys, _ = index.scan_all()
    assert np.all(np.diff(keys) >= 0)


def test_index_narrower_than_table(indexed_table):
    assert indexed_table.index("idx_a").n_leaf_pages < indexed_table.n_pages


def test_key_range_clamps_to_domain(indexed_table):
    index = indexed_table.index("idx_a")
    lo, hi = index.key_range_for({"a": (-50, 1 << 40)})
    keys, rids = index.read_range(lo, hi)
    assert rids.size == indexed_table.n_rows


def test_repr(table):
    assert "t" in repr(table)
