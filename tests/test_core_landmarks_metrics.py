"""Tests for landmark detectors, metrics, and regression comparison."""

import numpy as np
import pytest

from repro.core.landmarks import (
    crossovers,
    discontinuities,
    flattening_violations,
    monotonicity_violations,
    symmetry_score,
)
from repro.core.mapdata import MapData
from repro.core.metrics import profile_plan, summarize_plans
from repro.core.regression import compare_maps
from repro.errors import ExperimentError


XS = np.array([1.0, 2.0, 4.0, 8.0, 16.0])


def test_monotonic_curve_clean():
    assert monotonicity_violations(XS, np.array([1, 2, 3, 4, 5.0])) == []


def test_monotonicity_violation_detected():
    landmarks = monotonicity_violations(XS, np.array([1, 2, 1.5, 4, 5.0]))
    assert len(landmarks) == 1
    assert landmarks[0].kind == "monotonicity"
    assert landmarks[0].index == 2


def test_monotonicity_tolerates_noise():
    assert monotonicity_violations(XS, np.array([1, 2, 1.99, 4, 5.0])) == []


def test_monotonicity_skips_nan():
    assert monotonicity_violations(XS, np.array([1, np.nan, 0.5, 4, 5.0])) == []


def test_flattening_clean_for_concave():
    # Slopes decrease: 1, 0.5, 0.25, 0.125 per unit.
    ys = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    assert flattening_violations(XS, ys) == []


def test_flattening_violation_detected():
    # Flat then steep: the Fig 1 improved-scan signature.
    ys = np.array([1.0, 1.1, 1.2, 4.0, 20.0])
    landmarks = flattening_violations(XS, ys)
    assert landmarks
    assert landmarks[0].kind == "flattening"


def test_flattening_dip_then_spike_detected():
    """A marginal cost that goes negative then jumps must be reported.

    The old ``slopes[i-1] <= 0: continue`` guard skipped these curves
    entirely: the dip was the monotonicity detector's finding, but the
    rebound (a derivative increase) went unreported.
    """
    ys = np.array([5.0, 1.0, 10.0, 11.0, 12.0])
    landmarks = flattening_violations(XS, ys)
    assert landmarks
    assert landmarks[0].kind == "flattening"
    assert "flipped sign" in landmarks[0].detail


def test_flattening_plateau_staircase_stays_clean():
    """Page-quantized staircases (plateau then step) are healthy curves."""
    ys = np.array([1.0, 1.0, 1.2, 1.2, 1.4])
    assert flattening_violations(XS, ys) == []


def test_flattening_dip_with_negligible_rebound_stays_clean():
    ys = np.array([5.0, 4.0, 4.001, 4.002, 4.003])
    assert flattening_violations(XS, ys) == []


def test_flattening_still_clean_for_monotone_decreasing():
    ys = np.array([10.0, 8.0, 6.0, 4.0, 2.0])
    assert flattening_violations(XS, ys) == []


def test_discontinuity_detected():
    ys = np.array([1.0, 1.1, 5.0, 5.2, 5.4])
    landmarks = discontinuities(XS, ys, jump_factor=3.0)
    assert len(landmarks) == 1
    assert landmarks[0].index == 2


def test_discontinuity_validates_factor():
    with pytest.raises(ExperimentError):
        discontinuities(XS, np.ones(5), jump_factor=1.0)


def test_crossover_found_and_interpolated():
    ya = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
    yb = np.array([5.0, 5.0, 5.0, 5.0, 5.0])
    landmarks = crossovers(XS, ya, yb)
    assert len(landmarks) == 1
    assert 2.0 < landmarks[0].x < 8.0


def test_no_crossover():
    assert crossovers(XS, np.ones(5), np.ones(5) * 2) == []


def test_crossover_ignores_nan_segments():
    ya = np.array([1.0, np.nan, 4.0, 8.0, 16.0])
    yb = np.full(5, 5.0)
    landmarks = crossovers(XS, ya, yb)
    assert len(landmarks) == 1  # only the 8 vs 5 swap is detectable


def test_curve_validation():
    with pytest.raises(ExperimentError):
        monotonicity_violations(np.array([1.0, 1.0]), np.array([1.0, 2.0]))


def test_symmetry_score_symmetric():
    grid = np.array([[1.0, 2.0], [2.0, 1.0]])
    assert symmetry_score(grid) == 0.0


def test_symmetry_score_asymmetric():
    grid = np.array([[1.0, 10.0], [2.0, 1.0]])
    assert symmetry_score(grid) > 0.5


def test_symmetry_needs_square():
    with pytest.raises(ExperimentError):
        symmetry_score(np.ones((2, 3)))


def test_landmark_str():
    landmarks = discontinuities(XS, np.array([1.0, 1.1, 5.0, 5.2, 5.4]))
    assert "discontinuity" in str(landmarks[0])


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def flat_map(times):
    times = np.asarray(times, dtype=float)
    return MapData(
        plan_ids=[f"p{i}" for i in range(times.shape[0])],
        times=times,
        aborted=np.isnan(times),
        rows=np.zeros(times.shape[1], dtype=int),
        x_targets=np.arange(1.0, times.shape[1] + 1),
        x_achieved=np.arange(1.0, times.shape[1] + 1),
    )


def test_profile_plan_basics():
    mapdata = flat_map([[1.0, 1.0, 10.0], [1.0, 2.0, 1.0]])
    profile = profile_plan(mapdata, "p0")
    assert profile.worst_quotient == pytest.approx(10.0)
    assert profile.within_factor[2.0] == pytest.approx(2 / 3)
    assert profile.censored_cells == 0
    assert "p0" in profile.describe()


def test_profile_plan_censored():
    mapdata = flat_map([[1.0, np.nan], [1.0, 2.0]])
    profile = profile_plan(mapdata, "p0")
    assert profile.worst_quotient == float("inf")
    assert profile.censored_cells == 1


def test_summarize_sorted_by_robustness():
    mapdata = flat_map([[1.0, 100.0], [2.0, 2.0]])
    profiles = summarize_plans(mapdata)
    assert profiles[0].plan_id == "p1"


def test_profile_plan_optimal_fraction_respects_baseline():
    """The optimality mask must use the same baseline as the quotients.

    p0 is best-of-{p0, p1} everywhere, but a plan outside the baseline
    (p2) is cheaper at the first cell; the old code measured
    optimal_fraction against *all* plans and reported 0.5.
    """
    mapdata = flat_map([[1.0, 1.0], [2.0, 2.0], [0.5, 4.0]])
    restricted = profile_plan(mapdata, "p0", baseline_ids=["p0", "p1"])
    assert restricted.optimal_fraction == pytest.approx(1.0)
    unrestricted = profile_plan(mapdata, "p0")
    assert unrestricted.optimal_fraction == pytest.approx(0.5)


def test_profile_plan_outside_its_baseline():
    """A plan may be profiled against a baseline that excludes it."""
    mapdata = flat_map([[1.0, 4.0], [2.0, 2.0]])
    profile = profile_plan(mapdata, "p0", baseline_ids=["p1"])
    assert profile.worst_quotient == pytest.approx(2.0)
    assert profile.optimal_fraction == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# regression
# ---------------------------------------------------------------------------


def test_compare_maps_pass():
    before = flat_map([[1.0, 2.0]])
    after = flat_map([[1.1, 2.1]])
    report = compare_maps(before, after, threshold=1.5)
    assert report.passed
    assert report.worst_factor == 1.0
    assert "PASS" in report.summary()


def test_compare_maps_detects_regression():
    before = flat_map([[1.0, 2.0]])
    after = flat_map([[1.0, 5.0]])
    report = compare_maps(before, after, threshold=1.5)
    assert not report.passed
    assert report.worst_factor == pytest.approx(2.5)
    assert report.findings[0].cell == (1,)
    assert "FAIL" in report.summary()
    assert "2.50x" in str(report.findings[0])


def test_compare_maps_newly_censored_is_regression():
    before = flat_map([[1.0, 2.0]])
    after = flat_map([[1.0, np.nan]])
    report = compare_maps(before, after)
    assert not report.passed
    assert report.worst_factor == float("inf")


def test_compare_maps_improvement_tracked():
    before = flat_map([[5.0]])
    after = flat_map([[1.0]])
    report = compare_maps(before, after, threshold=1.5)
    assert report.passed
    assert len(report.improvements) == 1


def test_compare_maps_flags_free_before_costly_after():
    """A cell that cost nothing before and 100s after is a regression.

    The old ``b > 0 and a / b > threshold`` guard silently skipped every
    ``before == 0`` cell, so such plans passed regression testing.
    """
    before = flat_map([[0.0, 1.0]])
    after = flat_map([[100.0, 1.0]])
    report = compare_maps(before, after, threshold=1.5)
    assert not report.passed
    assert report.findings[0].cell == (0,)
    assert report.findings[0].factor == float("inf")
    assert report.worst_factor == float("inf")
    assert "inf" in str(report.findings[0])


def test_compare_maps_zero_to_zero_is_clean():
    before = flat_map([[0.0, 1.0]])
    after = flat_map([[0.0, 1.0]])
    assert compare_maps(before, after, threshold=1.5).passed


def test_compare_maps_costly_to_free_is_improvement():
    before = flat_map([[3.0, 1.0]])
    after = flat_map([[0.0, 1.0]])
    report = compare_maps(before, after, threshold=1.5)
    assert report.passed
    assert len(report.improvements) == 1


def test_compare_maps_validates_inputs():
    before = flat_map([[1.0, 2.0]])
    wrong_plans = MapData(
        plan_ids=["other"],
        times=np.array([[1.0, 2.0]]),
        aborted=np.zeros((1, 2), dtype=bool),
        rows=np.zeros(2, dtype=int),
        x_targets=np.array([1.0, 2.0]),
        x_achieved=np.array([1.0, 2.0]),
    )
    with pytest.raises(ExperimentError):
        compare_maps(before, wrong_plans)
    with pytest.raises(ExperimentError):
        compare_maps(before, before, threshold=0.9)
