"""Observability: sim-time tracer, cell profiles, metrics, exports.

The load-bearing contract throughout: **spans observe charging, they
never alter it** — tracing on vs. off yields byte-identical map JSON
(same invariant family as ``use_batched``), so golden fixtures never
need a re-baseline when tracing ships or evolves.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.cellstore import CellStore
from repro.core.driver import AdaptiveRefinePolicy
from repro.core.parallel import ParallelSweep
from repro.core.progress import ProgressEvent
from repro.core.runner import RobustnessSweep
from repro.core.scenario import (
    OperatorBench,
    SortSpillScenario,
    operator_bench_factory,
)
from repro.errors import ExperimentError, VisualizationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    CellProfile,
    chrome_trace,
    parse_profile_key,
    profile_key,
    profile_map,
    profiles_from_meta,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    trace_op,
    tracing_requested,
    use_tracer,
)

SORT_ROWS = (512, 1024)
SORT_MEM = (8 << 10, 16 << 10)


def make_sort():
    return SortSpillScenario(
        OperatorBench(), SORT_ROWS, SORT_MEM, row_bytes=64, seed=3
    )


def map_json(mapdata) -> str:
    return json.dumps(mapdata.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# tracer mechanics (fake context: the tracer duck-types ExecContext)
# ---------------------------------------------------------------------------


class _Attrs:
    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)


def fake_ctx():
    """Minimal counter-bearing context the tracer can snapshot."""
    return _Attrs(
        clock=_Attrs(now=0.0),
        disk=_Attrs(stats=_Attrs(pages_read=0, random_reads=0, pages_written=0)),
        pool=_Attrs(stats=_Attrs(hits=0, misses=0, evictions=0)),
        temp=_Attrs(pages_spilled=0),
        broker=_Attrs(granted_bytes=0, grants=0, denials=0),
    )


def test_untraced_trace_op_is_a_shared_noop():
    ctx = fake_ctx()
    assert current_tracer() is None
    first = trace_op(ctx, "scan", "scan")
    second = trace_op(ctx, "sort", "sort")
    assert first is second  # one shared object: no per-op allocation
    with first:
        pass  # enter/exit are no-ops


def test_null_tracer_records_nothing():
    ctx = fake_ctx()
    tracer = NullTracer()
    with use_tracer(tracer):
        with trace_op(ctx, "scan", "scan"):
            ctx.clock.now = 1.0
    assert tracer.drain() == []


def test_spans_nest_and_record_counter_deltas():
    ctx = fake_ctx()
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with trace_op(ctx, "outer", "plan"):
            ctx.clock.now = 1.0
            ctx.disk.stats.pages_read = 10
            with trace_op(ctx, "inner", "scan"):
                ctx.clock.now = 3.0
                ctx.disk.stats.pages_read = 25
                ctx.pool.stats.misses = 4
            ctx.clock.now = 4.0
    assert current_tracer() is None  # use_tracer restored the default
    roots = tracer.drain()
    assert tracer.drain() == []  # drain detaches
    (outer,) = roots
    assert (outer.name, outer.cat, outer.t0, outer.t1) == ("outer", "plan", 0.0, 4.0)
    (inner,) = outer.children
    assert (inner.t0, inner.t1) == (1.0, 3.0)
    # Deltas, and only the counters that moved inside each region.
    assert inner.counters == {"pages_read": 15, "pool_misses": 4}
    assert outer.counters == {"pages_read": 25, "pool_misses": 4}
    assert inner.duration == 2.0
    assert outer.self_seconds == 2.0  # 4.0 total minus the child's 2.0


def test_exceptions_unwind_through_open_spans():
    ctx = fake_ctx()
    tracer = Tracer()
    with use_tracer(tracer):
        with pytest.raises(RuntimeError, match="budget"):
            with trace_op(ctx, "outer", "plan"):
                with trace_op(ctx, "inner", "sort"):
                    ctx.clock.now = 2.5
                    raise RuntimeError("budget")
    (outer,) = tracer.drain()
    # Both spans closed at the abort's clock value; the error propagated.
    assert outer.t1 == 2.5
    assert outer.children[0].t1 == 2.5


def test_span_roundtrip():
    span = Span(name="a", cat="scan", t0=0.5, t1=2.0)
    span.counters = {"pages_read": 3}
    span.children = [Span(name="b", cat="sort", t0=0.6, t1=1.0)]
    restored = Span.from_dict(json.loads(json.dumps(span.to_dict())))
    assert restored == span


def test_tracing_requested_parses_the_env_knob():
    for value in ("1", "true", "YES", " on "):
        assert tracing_requested({"REPRO_TRACE": value})
    for value in ("", "0", "false", "off", "nope"):
        assert not tracing_requested({"REPRO_TRACE": value})
    assert not tracing_requested({})


# ---------------------------------------------------------------------------
# capture through the sweep engines: profiles ride, maps never change
# ---------------------------------------------------------------------------


def test_serial_capture_attaches_parseable_profiles():
    scenario = make_sort()
    mapdata = RobustnessSweep(
        [OperatorBench()], capture_profiles=True
    ).sweep(scenario)
    profiles = profiles_from_meta(mapdata.meta)
    n_cells = int(np.prod(scenario.grid_shape))
    assert len(profiles) == len(mapdata.plan_ids) * n_cells
    for key, profile in profiles.items():
        assert (profile.plan_id, profile.cell) == parse_profile_key(key)
        assert profile.spans, "every measurement opens at least the root span"
        root = profile.spans[0]
        assert root.name == "execute" and root.cat == "plan"
        # The root span covers the whole measurement: its inclusive
        # duration is the raw measured virtual time.
        assert root.duration == pytest.approx(profile.seconds)
        assert profile.counter_totals().get("pages_read", 0) >= 0
        breakdown = profile.operator_seconds(self_time=True)
        assert sum(breakdown.values()) == pytest.approx(profile.seconds)
    # The sort scenario actually exercises the sort spans.
    names = {span.name for p in profiles.values() for span in p.walk()}
    assert "external-sort" in names


def test_capture_off_leaves_meta_unprofiled():
    mapdata = RobustnessSweep([OperatorBench()]).sweep(make_sort())
    assert "profiles" not in mapdata.meta


@pytest.mark.parametrize("adaptive", [False, True], ids=["dense", "adaptive"])
def test_serial_tracing_on_off_maps_are_byte_identical(adaptive):
    def policy():
        return AdaptiveRefinePolicy(initial_step=2) if adaptive else None

    plain = RobustnessSweep([OperatorBench()]).sweep(
        make_sort(), policy=policy()
    )
    traced = RobustnessSweep([OperatorBench()], capture_profiles=True).sweep(
        make_sort(), policy=policy()
    )
    assert "profiles" in traced.meta
    assert map_json(traced) == map_json(plain)


def test_parallel_tracing_on_is_byte_identical_to_serial_off():
    plain = RobustnessSweep([OperatorBench()]).sweep(make_sort())
    engine = ParallelSweep(
        operator_bench_factory, n_workers=2, capture_profiles=True
    )
    traced = engine.sweep(make_sort().spec())
    assert map_json(traced) == map_json(plain)
    # Chunk parts carried their profiles back; the merge unioned them.
    profiles = profiles_from_meta(traced.meta)
    n_cells = int(np.prod(make_sort().grid_shape))
    assert len(profiles) == len(traced.plan_ids) * n_cells


def test_profiles_replay_from_the_cell_store(tmp_path):
    cold = RobustnessSweep(
        [OperatorBench()],
        capture_profiles=True,
        cell_store=CellStore(tmp_path),
    ).sweep(make_sort())
    warm_store = CellStore(tmp_path)
    warm = RobustnessSweep(
        [OperatorBench()], capture_profiles=True, cell_store=warm_store
    ).sweep(make_sort())
    assert warm_store.cell_misses == 0  # pure replay, nothing measured
    assert map_json(warm) == map_json(cold)
    assert warm.meta["profiles"] == cold.meta["profiles"]


def test_profile_map_projects_seconds_onto_the_grid():
    scenario = make_sort()
    mapdata = RobustnessSweep(
        [OperatorBench()], capture_profiles=True
    ).sweep(scenario)
    plan_id = mapdata.plan_ids[0]
    total = profile_map(mapdata, plan_id)
    assert total.shape == scenario.grid_shape
    assert np.isfinite(total).all()
    sort_only = profile_map(mapdata, plan_id, operator="external-sort")
    observed = np.where(np.isfinite(sort_only), sort_only, 0.0)
    assert (observed <= total + 1e-12).all()
    # An operator nobody ran projects to an all-NaN grid, not zeros.
    missing = profile_map(mapdata, plan_id, operator="no-such-op")
    assert np.isnan(missing).all()


# ---------------------------------------------------------------------------
# exports: Chrome trace JSON and the SVG panel
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def captured_profiles():
    mapdata = RobustnessSweep(
        [OperatorBench()], capture_profiles=True
    ).sweep(make_sort())
    return list(profiles_from_meta(mapdata.meta).values())


def test_chrome_trace_schema(captured_profiles):
    trace = chrome_trace(captured_profiles)
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events
    assert {event["ph"] for event in events} == {"X", "M"}
    for event in events:
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int) and event["pid"] >= 1
        if event["ph"] == "M":
            assert "name" in event["args"]
        else:
            assert isinstance(event["tid"], int) and event["tid"] >= 1
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
    # Every cell became a process, every plan within it a thread.
    processes = [e for e in events if e["ph"] == "M" and "tid" not in e]
    assert len(processes) == len({p.cell for p in captured_profiles})


def test_chrome_trace_roundtrips_through_disk(tmp_path, captured_profiles):
    path = write_chrome_trace(tmp_path / "sub" / "trace.json", captured_profiles)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(chrome_trace(captured_profiles)))


def test_cell_profile_roundtrip(captured_profiles):
    for profile in captured_profiles:
        restored = CellProfile.from_dict(
            json.loads(json.dumps(profile.to_dict()))
        )
        assert restored == profile


def test_profile_key_roundtrips_plan_ids_with_at_signs():
    key = profile_key("sys@2.sort", (3, 0))
    assert parse_profile_key(key) == ("sys@2.sort", (3, 0))


def test_profile_panel_svg(captured_profiles):
    from repro.viz import profile_panel_svg

    svg = profile_panel_svg(captured_profiles, max_rows=4)
    assert svg.lstrip().startswith("<svg")
    assert "external-sort" in svg
    assert "faster profiles not shown" in svg  # truncation is labeled
    with pytest.raises(VisualizationError):
        profile_panel_svg([])


# ---------------------------------------------------------------------------
# metrics registry + Prometheus rendering
# ---------------------------------------------------------------------------


def test_counter_labels_and_values():
    registry = MetricsRegistry()
    requests = registry.counter("reqs_total", "Requests.")
    requests.inc(reason="full")
    requests.inc(2, reason="full")
    requests.inc(reason="budget")
    assert requests.value(reason="full") == 3.0
    assert requests.value(reason="missing") == 0.0
    with pytest.raises(ExperimentError):
        requests.inc(-1)
    text = registry.render()
    assert "# HELP reqs_total Requests." in text
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{reason="full"} 3' in text


def test_gauge_set_function_and_histogram_buckets():
    registry = MetricsRegistry()
    depth = registry.gauge("depth", "Queue depth.")
    depth.set_function(lambda: 7)
    latency = registry.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
    latency.observe(0.05)
    latency.observe(0.5)
    latency.observe(5.0)
    text = registry.render()
    assert "depth 7" in text
    assert 'latency_seconds_bucket{le="0.1"} 1' in text
    assert 'latency_seconds_bucket{le="1"} 2' in text
    assert 'latency_seconds_bucket{le="+Inf"} 3' in text
    assert "latency_seconds_count 3" in text
    assert text.endswith("\n")


def test_registry_get_or_create_rejects_type_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("m", "A metric.")
    assert registry.counter("m", "A metric.") is counter
    with pytest.raises(ExperimentError):
        registry.gauge("m", "A metric.")


def test_prometheus_text_is_line_parseable():
    registry = MetricsRegistry()
    registry.counter("a_total", "A.").inc(kind="x y")
    registry.gauge("b", "B.").set(1.5)
    registry.histogram("c_seconds", "C.").observe(0.2)
    for line in registry.render().splitlines():
        assert line  # exposition format has no blank interior lines
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
            continue
        name_part, _, value = line.rpartition(" ")
        float(value)  # every sample value parses
        assert name_part


# ---------------------------------------------------------------------------
# progress arithmetic
# ---------------------------------------------------------------------------


def event(**kwargs):
    defaults = dict(scenario="s", done=0, total=4, elapsed=0.0)
    defaults.update(kwargs)
    return ProgressEvent(**defaults)


def test_cells_per_sec_guards_zero_progress_and_zero_elapsed():
    assert event(done=0, elapsed=1.0).cells_per_sec is None
    assert event(done=2, elapsed=0.0).cells_per_sec is None
    assert event(done=2, elapsed=4.0).cells_per_sec == 0.5


def test_eta_is_none_for_zero_progress_all_hit_waves():
    # The zero-progress tick of an all-cache-hit wave: no observed rate,
    # so no ETA — and certainly no ZeroDivisionError.
    tick = event(done=0, total=4, elapsed=0.0, cache_hits=4)
    assert tick.eta is None
    assert "eta" not in tick.render()


def test_eta_normal_and_terminal_values():
    assert event(done=2, total=4, elapsed=1.0).eta == pytest.approx(1.0)
    assert event(done=4, total=4, elapsed=1.0).eta == 0.0
    assert event(done=1, total=4, elapsed=2.0, kind="round", round_index=0,
                 wave_cells=1).eta is None


# ---------------------------------------------------------------------------
# service metrics plane + profile endpoint
# ---------------------------------------------------------------------------


def service_fixture(trace):
    from repro.bench.harness import BenchConfig
    from repro.service import JobManager, build_server

    config = BenchConfig(
        n_rows=512,
        min_exp_1d=-3,
        min_exp_2d=-2,
        pool_pages=32,
        join_rows=(64, 128),
        join_key_domain=256,
        trace=trace,
    )
    manager = JobManager(config, workers=1, queue_limit=4)
    server = build_server(manager)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return f"http://{host}:{port}", manager, server


def test_service_metrics_and_profile_endpoints():
    base, manager, server = service_fixture(trace=True)
    try:
        payload = json.dumps({"scenario": "join"}).encode("utf-8")
        request = urllib.request.Request(
            base + "/maps",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as resp:
            job_id = json.loads(resp.read())["job_id"]
        manager.wait(job_id, timeout=120)

        with urllib.request.urlopen(base + "/metrics") as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode("utf-8")
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 1" in text
        assert 'repro_jobs_completed_total{state="done"} 1' in text
        assert "repro_job_seconds_count 1" in text
        assert "repro_queue_depth 0" in text
        for line in text.splitlines():
            if not line.startswith("#"):
                float(line.rpartition(" ")[2])

        with urllib.request.urlopen(base + f"/jobs/{job_id}/profile") as resp:
            raw = json.loads(resp.read())
        assert raw["traced"] is True
        assert raw["job"]["state"] == "done"
        for key in raw["profiles"]:
            parse_profile_key(key)  # every key addresses a (plan, cell)

        with urllib.request.urlopen(
            base + f"/jobs/{job_id}/profile?format=chrome"
        ) as resp:
            trace = json.loads(resp.read())
        assert trace["traceEvents"]

        with pytest.raises(urllib.error.HTTPError) as bad:
            urllib.request.urlopen(base + f"/jobs/{job_id}/profile?format=webp")
        assert bad.value.code == 400
    finally:
        server.shutdown()
        server.server_close()
        manager.close()


def test_service_untraced_job_reports_traced_false():
    base, manager, server = service_fixture(trace=False)
    try:
        from repro.bench.requests import MapRequest

        job, _ = manager.submit(MapRequest("join"))
        manager.wait(job.job_id, timeout=120)
        with urllib.request.urlopen(base + f"/jobs/{job.job_id}/profile") as resp:
            raw = json.loads(resp.read())
        assert raw["traced"] is False and raw["profiles"] == {}
    finally:
        server.shutdown()
        server.server_close()
        manager.close()


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


def test_json_formatter_emits_parseable_records():
    import logging

    from repro.obs.logs import JsonFormatter, log_format

    record = logging.LogRecord(
        "repro.service", logging.WARNING, __file__, 1, "job %s failed", ("j1",), None
    )
    record.fields = {"job_id": "j1"}
    line = json.loads(JsonFormatter().format(record))
    assert line["level"] == "warning"
    assert line["logger"] == "repro.service"
    assert line["message"] == "job j1 failed"
    assert line["job_id"] == "j1"
    assert log_format({"REPRO_LOG_FORMAT": "json"}) == "json"
    assert log_format({}) == "plain"
